//! Session-layer oracles: kill/resume byte-identity, fault-injection
//! recovery, and warm-start reuse.
//!
//! These check the `critter-session` contracts end to end against the real
//! autotuner:
//!
//! * a sweep killed at *any* point and resumed from its checkpoint must
//!   finish to a report (and obs timeline) byte-identical to the
//!   uninterrupted sweep's;
//! * a fault-injected sweep must complete through retry + quarantine, and
//!   every configuration that survives must be bit-identical to the
//!   fault-free sweep's result — panic-only faults never perturb the
//!   surviving runs' virtual timing;
//! * warm-starting from a persisted profile must strictly reduce executed
//!   kernels while selecting the same winner.

use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use critter_algs::{Workload, WorkloadOutput};
use critter_autotune::{Autotuner, SessionConfig, StalenessPolicy, TuningOptions, TuningSpace};
use critter_core::{CritterEnv, ExecutionPolicy};
use critter_obs::EventKind;
use critter_sim::FaultPlan;
use proptest::prelude::*;

/// Scratch directory for one test, cleaned before use.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("critter-testkit-session-oracles")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A workload wrapper that panics (on rank 0) once the shared run counter
/// reaches `kill_after` — the "power cable" of the kill/resume oracle.
/// `name()` delegates, so the wrapped sweep has the same fingerprint as the
/// pristine one and its checkpoint resumes cleanly.
struct KillSwitch {
    inner: Arc<dyn Workload>,
    runs: Arc<AtomicUsize>,
    kill_after: usize,
}

impl Workload for KillSwitch {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn ranks(&self) -> usize {
        self.inner.ranks()
    }

    fn run(&self, env: &mut CritterEnv, verify: bool) -> WorkloadOutput {
        if env.rank() == 0 && self.runs.fetch_add(1, Ordering::SeqCst) >= self.kill_after {
            panic!("session oracle: injected kill");
        }
        self.inner.run(env, verify)
    }
}

fn options() -> TuningOptions {
    let space = TuningSpace::SlateCholesky;
    let mut opts = TuningOptions::new(ExecutionPolicy::LocalPropagation, 0.25)
        .with_test_machine()
        .with_observe();
    opts.reset_between_configs = space.resets_between_configs();
    opts
}

fn workloads() -> Vec<Arc<dyn Workload>> {
    TuningSpace::SlateCholesky.smoke()
}

/// Canonical bytes of a report: the JSON snapshot plus the full Chrome
/// trace of the obs timeline (the strongest observable surface we have).
fn report_bytes(report: &critter_autotune::TuningReport) -> (String, String) {
    let json = report.to_json_string();
    let trace = report.obs.as_ref().expect("observed sweep").timeline.to_chrome_string();
    (json, trace)
}

/// The uninterrupted sweep, computed once (it is a pure function of the
/// codebase; proptest re-runs the oracle body many times).
fn baseline() -> &'static (String, String) {
    static BASELINE: OnceLock<(String, String)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let report =
            Autotuner::new(options()).tune_session(&workloads(), &SessionConfig::new()).unwrap();
        report_bytes(&report)
    })
}

/// Kill the sweep after `kill_after` simulated runs, then resume it from
/// the checkpoint with pristine workloads; returns the finished report's
/// bytes plus the session-log event kinds.
fn kill_and_resume(dir: &std::path::Path, kill_after: usize) -> ((String, String), Vec<EventKind>) {
    let session = SessionConfig::new().with_checkpoint_dir(dir).with_checkpoint_every(1);
    let tuner = Autotuner::new(options());
    let runs = Arc::new(AtomicUsize::new(0));
    let killers: Vec<Arc<dyn Workload>> = workloads()
        .into_iter()
        .map(|inner| {
            Arc::new(KillSwitch { inner, runs: Arc::clone(&runs), kill_after }) as Arc<dyn Workload>
        })
        .collect();
    let prior = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // the kill is expected; keep stderr quiet
    let killed =
        std::panic::catch_unwind(AssertUnwindSafe(|| tuner.tune_session(&killers, &session)));
    std::panic::set_hook(prior);
    assert!(killed.is_err(), "the kill switch must fire (kill_after {kill_after})");

    let resumed = tuner.tune_session(&workloads(), &session).expect("resume succeeds");
    let log = critter_session_log_kinds(&session);
    (report_bytes(&resumed), log)
}

fn critter_session_log_kinds(session: &SessionConfig) -> Vec<EventKind> {
    let path = session.log_path().expect("checkpointing session");
    let text = std::fs::read_to_string(path).expect("session log exists");
    text.lines()
        .map(|line| {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            critter_obs::Event::from_json(&v).unwrap().kind
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// Byte-identity under kill/resume, for a sampled kill point. The smoke
    /// sweep is 4 configurations × (full + tuned) = 8 simulated runs; any
    /// kill inside that range must leave a resumable checkpoint trail.
    #[test]
    fn killed_sweep_resumes_to_a_byte_identical_report(kill_after in 1usize..8) {
        let dir = scratch(&format!("kill-{kill_after}"));
        let ((json, trace), log) = kill_and_resume(&dir, kill_after);
        let (base_json, base_trace) = baseline();
        prop_assert_eq!(&json, base_json);
        prop_assert_eq!(&trace, base_trace);
        // Lifecycle facts live in the session log, never the report.
        prop_assert!(log.contains(&EventKind::Checkpoint));
        prop_assert!(log.contains(&EventKind::Restore));
        prop_assert!(!json.contains("\"restore\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A checkpoint must refuse to resume a sweep with different options: the
/// envelope fingerprint catches the mismatch before any state is restored.
#[test]
fn checkpoint_refuses_a_different_sweep() {
    let dir = scratch("fingerprint-mismatch");
    let session = SessionConfig::new().with_checkpoint_dir(&dir).with_checkpoint_every(1);
    Autotuner::new(options()).tune_session(&workloads(), &session).unwrap();
    let err = Autotuner::new(options().with_seed(0xBAD5EED))
        .tune_session(&workloads(), &session)
        .unwrap_err();
    assert!(
        matches!(err, critter_core::CritterError::Mismatch { .. }),
        "expected a fingerprint mismatch, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fault-injection recovery: under a panic-only fault plan the sweep must
/// complete via retry (or quarantine), every surviving configuration must
/// be bit-identical to the fault-free sweep's (panic-only plans do not
/// perturb the virtual timing of runs that complete), and the fault/retry
/// decisions must be visible as obs events in the report's session run.
#[test]
fn fault_injected_sweep_recovers_to_the_fault_free_results() {
    let clean = Autotuner::new(options()).tune(&workloads());
    let plan = FaultPlan::new(17).with_rank_panics(3e-4);
    let faulty = Autotuner::new(options().with_faults(plan).with_retries(6)).tune(&workloads());

    assert_eq!(faulty.configs.len(), clean.configs.len());
    let mut survived = 0;
    for (f, c) in faulty.configs.iter().zip(&clean.configs) {
        if !f.quarantined {
            assert_eq!(f, c, "surviving config {} must match the fault-free sweep", c.name);
            survived += 1;
        }
    }
    assert!(survived > 0, "at least one configuration must survive the fault plan");

    // The fault decisions are part of the report: a synthetic `session` run
    // carries them, and at least one fault must actually have fired (the
    // plan is deterministic, so this cannot flake).
    let obs = faulty.obs.as_ref().expect("observed sweep");
    let session_run = obs
        .timeline
        .runs()
        .iter()
        .find(|r| r.label == "session")
        .expect("fault-injected sweep records a session run");
    let faults = session_run.ranks[0].events.iter().filter(|e| e.kind == EventKind::Fault).count();
    let retries = session_run.ranks[0].events.iter().filter(|e| e.kind == EventKind::Retry).count();
    assert!(faults > 0, "the pinned fault plan must fire at least once");
    assert!(retries > 0, "every non-final fault must be followed by a retry");

    // The selection metrics skip quarantined configurations, so when the
    // fault-free winner survived, both sweeps agree on it.
    if !faulty.configs[clean.selected()].quarantined {
        assert_eq!(faulty.selected(), clean.selected(), "same winner under panics with retry");
    }
}

/// Warm-starting a sweep that resets statistics between configurations is
/// refused up front: the per-config reset would silently discard the seeded
/// models, so the engine must fail loudly instead.
#[test]
fn warm_start_refuses_per_config_resets() {
    let opts = options(); // SLATE protocol: reset_between_configs = true
    assert!(opts.reset_between_configs);
    let err = Autotuner::new(opts)
        .tune_session(
            &workloads(),
            &SessionConfig::new().with_warm_start("/nonexistent/profile.json"),
        )
        .unwrap_err();
    assert!(
        matches!(err, critter_core::CritterError::Mismatch { .. }),
        "expected a protocol mismatch, got: {err}"
    );
}

/// Warm-start reuse: persist a profile, seed a second session from it
/// (Capital's persist-models protocol), and the second sweep must execute
/// strictly fewer kernels while selecting the same winner.
#[test]
fn warm_start_executes_fewer_kernels_and_picks_the_same_winner() {
    let dir = scratch("warm-start");
    let profile = dir.join("profile.json");
    let space = TuningSpace::CapitalCholesky;
    let mut opts = TuningOptions::new(ExecutionPolicy::LocalPropagation, 0.25)
        .with_test_machine()
        .with_persist_models(true);
    opts.reset_between_configs = space.resets_between_configs();
    let tuner = Autotuner::new(opts);
    let workloads = space.smoke();

    let executed = |report: &critter_autotune::TuningReport| -> u64 {
        report
            .configs
            .iter()
            .flat_map(|c| c.pairs.iter().map(|(_, tuned)| tuned.kernels_executed))
            .sum()
    };

    let cold =
        tuner.tune_session(&workloads, &SessionConfig::new().with_profile_out(&profile)).unwrap();
    assert!(profile.exists(), "profile must be persisted");

    let warm =
        tuner.tune_session(&workloads, &SessionConfig::new().with_warm_start(&profile)).unwrap();
    assert!(
        executed(&warm) < executed(&cold),
        "warm start must execute strictly fewer kernels ({} vs {})",
        executed(&warm),
        executed(&cold)
    );
    assert_eq!(warm.selected(), cold.selected(), "warm start must not change the winner");

    // A stale profile is trusted less, so it re-verifies more than a fresh
    // one — but still less than a cold start.
    let stale = tuner
        .tune_session(
            &workloads,
            &SessionConfig::new().with_warm_start(&profile).with_staleness(
                StalenessPolicy::fresh().with_decay(0.25).with_variance_inflation(4.0),
            ),
        )
        .unwrap();
    assert!(executed(&stale) < executed(&cold));
    assert!(executed(&stale) >= executed(&warm));
    assert_eq!(stale.selected(), cold.selected());
    let _ = std::fs::remove_dir_all(&dir);
}

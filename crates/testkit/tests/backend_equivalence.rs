//! The cross-backend oracle suite: the simulator's observable artifacts are
//! a pure function of the tuning problem, never of the machinery hosting the
//! simulated ranks. Every oracle here runs the same sweep on the `threads`
//! and `tasks` communicator backends, across matching-core shard counts, and
//! demands *byte identity* on the strongest surfaces we export:
//!
//! * the canonical `TuningReport` JSON snapshot,
//! * the Chrome trace of the observed timeline,
//! * the aggregated metrics registry.
//!
//! A property family additionally samples (space, policy, ε, seed, shard
//! count, schedule perturbation) tuples, perturbing only the `tasks` run —
//! wall-clock yields and sleeps must never leak into virtual time. Finally,
//! the PR 4 kill/resume oracles are replayed on the `tasks` backend, and
//! *across* backends: the checkpoint fingerprint deliberately excludes the
//! backend, so a sweep killed under `threads` must resume under `tasks` to
//! the same bytes.
//!
//! CI quick profile: set `CRITTER_EQUIV_QUICK=1` to shrink the deterministic
//! shard matrix and `PROPTEST_CASES=N` to bound the sampled family.

use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use critter_algs::{Workload, WorkloadOutput};
use critter_autotune::{Autotuner, SessionConfig, TuningOptions, TuningReport, TuningSpace};
use critter_core::{CritterEnv, ExecutionPolicy};
use critter_sim::{BackendKind, PerturbParams};
use proptest::prelude::*;

/// Spaces the sampled family draws from (distinct rank counts and
/// statistics-reset protocols).
const SPACES: [TuningSpace; 3] =
    [TuningSpace::SlateCholesky, TuningSpace::CandmcQr, TuningSpace::CapitalCholesky];

/// Policies the sampled family draws from: the count-scaling extremes plus
/// the paper's headline online policy.
const POLICIES: [ExecutionPolicy; 3] = [
    ExecutionPolicy::ConditionalExecution,
    ExecutionPolicy::OnlinePropagation,
    ExecutionPolicy::EagerPropagation,
];

/// Shard counts the deterministic matrix exercises: auto, the degenerate
/// single shard (maximum contention), a non-power-of-two, and a spread.
fn shard_counts() -> Vec<usize> {
    if std::env::var_os("CRITTER_EQUIV_QUICK").is_some() {
        vec![0, 1]
    } else {
        vec![0, 1, 3, 8]
    }
}

/// Explicit case count, honoring the `PROPTEST_CASES` override (the CI quick
/// profile sets it low; an explicit struct literal would pin it).
fn cases(default_cases: u32) -> ProptestConfig {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default_cases);
    ProptestConfig { cases }
}

/// Canonical bytes of one observed sweep: (report JSON, Chrome trace,
/// metrics registry).
fn artifact_bytes(report: &TuningReport) -> (String, String, String) {
    let obs = report.obs.as_ref().expect("observed sweep");
    (report.to_json_string(), obs.timeline.to_chrome_string(), obs.metrics_string())
}

fn observed(space: TuningSpace, policy: ExecutionPolicy, epsilon: f64, seed: u64) -> TuningOptions {
    let mut opts =
        TuningOptions::new(policy, epsilon).with_test_machine().with_observe().with_seed(seed);
    opts.reset_between_configs = space.resets_between_configs();
    opts
}

fn sweep(space: TuningSpace, opts: TuningOptions) -> TuningReport {
    Autotuner::new(opts).tune(&space.smoke())
}

/// The deterministic matrix: one smoke sweep per backend × shard count, all
/// byte-identical to the `threads`/auto-shards reference on every surface.
#[test]
fn every_backend_and_shard_count_yields_byte_identical_artifacts() {
    let space = TuningSpace::SlateCholesky;
    let base = || observed(space, ExecutionPolicy::OnlinePropagation, 0.25, 7);
    let (ref_json, ref_trace, ref_metrics) = artifact_bytes(&sweep(space, base()));
    for backend in BackendKind::ALL {
        for &shards in &shard_counts() {
            if backend == BackendKind::Threads && shards == 0 {
                continue; // the reference itself
            }
            let report = sweep(space, base().with_backend(backend).with_shards(shards));
            let (json, trace, metrics) = artifact_bytes(&report);
            assert_eq!(json, ref_json, "report JSON diverged on {backend} shards={shards}");
            assert_eq!(trace, ref_trace, "Chrome trace diverged on {backend} shards={shards}");
            assert_eq!(metrics, ref_metrics, "metrics diverged on {backend} shards={shards}");
        }
    }
}

proptest! {
    #![proptest_config(cases(5))]

    /// The sampled family: for a random (space, policy, ε, seed, shards,
    /// perturbation) tuple, a perturbed `tasks` sweep is byte-identical to
    /// the unperturbed `threads` sweep of the same problem.
    #[test]
    fn sampled_problems_agree_across_backends(
        space_pick in 0usize..SPACES.len(),
        policy_pick in 0usize..POLICIES.len(),
        eps_pick in 0usize..3,
        seed in 0u64..1 << 16,
        shards in 0usize..9,
        perturb in (any::<bool>(), 0u64..1 << 10, 0u32..50, 0u32..20, 0u64..40)
            .prop_map(|(on, seed, y, s, us)| on.then_some((seed, y, s, us))),
    ) {
        let space = SPACES[space_pick];
        let policy = POLICIES[policy_pick];
        let epsilon = [1.0, 0.25, 0.0625][eps_pick];
        let reference = artifact_bytes(&sweep(space, observed(space, policy, epsilon, seed)));
        let mut opts = observed(space, policy, epsilon, seed)
            .with_backend(BackendKind::Tasks)
            .with_shards(shards);
        if let Some((pseed, yield_pct, sleep_pct, max_sleep_us)) = perturb {
            opts = opts.with_perturb(PerturbParams {
                seed: pseed,
                yield_prob: yield_pct as f64 / 100.0,
                sleep_prob: sleep_pct as f64 / 100.0,
                max_sleep_us,
            });
        }
        let tasks = artifact_bytes(&sweep(space, opts));
        prop_assert_eq!(&tasks.0, &reference.0);
        prop_assert_eq!(&tasks.1, &reference.1);
        prop_assert_eq!(&tasks.2, &reference.2);
    }
}

// ---------------------------------------------------------------------------
// Kill/resume byte-identity on (and across) backends.
// ---------------------------------------------------------------------------

/// Scratch directory for one test, cleaned before use.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("critter-testkit-backend-equivalence")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A workload wrapper that panics (on rank 0) once the shared run counter
/// reaches `kill_after`; `name()` delegates so the wrapped sweep fingerprints
/// identically to the pristine one (see `session_oracles.rs`).
struct KillSwitch {
    inner: Arc<dyn Workload>,
    runs: Arc<AtomicUsize>,
    kill_after: usize,
}

impl Workload for KillSwitch {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn ranks(&self) -> usize {
        self.inner.ranks()
    }

    fn run(&self, env: &mut CritterEnv, verify: bool) -> WorkloadOutput {
        if env.rank() == 0 && self.runs.fetch_add(1, Ordering::SeqCst) >= self.kill_after {
            panic!("backend oracle: injected kill");
        }
        self.inner.run(env, verify)
    }
}

/// Kill a `kill_backend` sweep after `kill_after` simulated runs, resume it
/// from the checkpoint on `resume_backend`, and return the finished bytes.
fn kill_and_resume(
    dir: &std::path::Path,
    kill_after: usize,
    kill_backend: BackendKind,
    resume_backend: BackendKind,
) -> (String, String, String) {
    let space = TuningSpace::SlateCholesky;
    let opts =
        |backend| observed(space, ExecutionPolicy::LocalPropagation, 0.25, 0).with_backend(backend);
    let session = SessionConfig::new().with_checkpoint_dir(dir).with_checkpoint_every(1);
    let runs = Arc::new(AtomicUsize::new(0));
    let killers: Vec<Arc<dyn Workload>> = space
        .smoke()
        .into_iter()
        .map(|inner| {
            Arc::new(KillSwitch { inner, runs: Arc::clone(&runs), kill_after }) as Arc<dyn Workload>
        })
        .collect();
    let prior = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // the kill is expected; keep stderr quiet
    let killed = std::panic::catch_unwind(AssertUnwindSafe(|| {
        Autotuner::new(opts(kill_backend)).tune_session(&killers, &session)
    }));
    std::panic::set_hook(prior);
    assert!(killed.is_err(), "the kill switch must fire (kill_after {kill_after})");

    let resumed = Autotuner::new(opts(resume_backend))
        .tune_session(&space.smoke(), &session)
        .expect("resume succeeds");
    artifact_bytes(&resumed)
}

/// The uninterrupted sweep the kill/resume variants must reproduce, computed
/// on the `threads` backend: resuming on *any* backend lands on these bytes.
fn uninterrupted_baseline() -> (String, String, String) {
    let space = TuningSpace::SlateCholesky;
    let opts = observed(space, ExecutionPolicy::LocalPropagation, 0.25, 0);
    let report = Autotuner::new(opts).tune_session(&space.smoke(), &SessionConfig::new()).unwrap();
    artifact_bytes(&report)
}

#[test]
fn tasks_sweep_killed_and_resumed_is_byte_identical() {
    let dir = scratch("kill-tasks-resume-tasks");
    let resumed = kill_and_resume(&dir, 3, BackendKind::Tasks, BackendKind::Tasks);
    assert_eq!(resumed, uninterrupted_baseline());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_killed_on_threads_resumes_on_tasks_byte_identically() {
    // The checkpoint fingerprint excludes the backend (it cannot change the
    // result), so a checkpoint written under one backend is a valid resume
    // point for the other.
    let dir = scratch("kill-threads-resume-tasks");
    let resumed = kill_and_resume(&dir, 5, BackendKind::Threads, BackendKind::Tasks);
    assert_eq!(resumed, uninterrupted_baseline());
    let _ = std::fs::remove_dir_all(&dir);
}

//! HTTP API contract suite for the `critter-serve` daemon.
//!
//! Three oracles, all against a live in-process daemon on an ephemeral
//! port:
//!
//! 1. **Golden documents** — the pinned scenario's response bodies
//!    (submit, status, healthz, and the whole malformed-request table)
//!    are checked byte-for-byte against committed fixtures under the
//!    usual bless flow (`CRITTER_BLESS=1` or the `bless` bin).
//! 2. **CLI equivalence** — the scenario's job is the same pinned sweep
//!    as the `cholesky-local-eps25` golden tune, so the report the
//!    daemon serves must be byte-identical to that committed fixture.
//! 3. **Warm starts over the wire** — a profile captured from one job
//!    feeds the next job inline, and the warm-started report matches an
//!    in-process `tune_session` with the same profile exactly.

use std::time::{Duration, Instant};

use critter_autotune::{Autotuner, SessionConfig, StalenessPolicy};
use critter_serve::http::client;
use critter_serve::{JobSpec, Server, ServerConfig};
use critter_testkit::{golden, serve_oracle};

#[test]
fn golden_serve_documents_and_cli_equivalent_report() {
    let scenario = serve_oracle::run("contract");
    for (name, text) in &scenario.docs {
        golden::check_or_bless(name, text);
    }
    // The served report is the same bytes as the golden tune fixture: the
    // job spec pins the exact sweep `GoldenTune { cholesky-local-eps25 }`
    // runs, and the daemon serves `TuningReport::to_json_string` output
    // verbatim.
    let fixture = golden::fixtures_dir().join("cholesky-local-eps25.json");
    let committed = std::fs::read_to_string(&fixture)
        .unwrap_or_else(|e| panic!("missing {} ({e})", fixture.display()));
    assert_eq!(
        scenario.report, committed,
        "the daemon's report must be byte-identical to the golden tune fixture"
    );
}

fn wait_done(addr: std::net::SocketAddr, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, doc) = client::request_json(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        match doc.get("state").and_then(|s| s.as_str()) {
            Some("done") => return,
            Some("failed") => panic!("job {id} failed: {doc:?}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn warm_start_profiles_round_trip_over_the_wire() {
    let data_dir =
        std::env::temp_dir().join(format!("critter-serve-warmstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let mut config = ServerConfig::new(&data_dir);
    config.addr = "127.0.0.1:0".into();
    let server = Server::start(config).expect("daemon starts");
    let addr = server.addr();

    // Job A captures a kernel-model profile (Capital persists models
    // between configurations, so no override is needed).
    let spec_a = r#"{"space": "capital-cholesky", "policy": "local", "epsilon": 0.25,
                     "smoke": true, "machine": "test", "profile": true}"#;
    let (status, doc) = client::request_json(addr, "POST", "/v1/jobs", Some(spec_a)).unwrap();
    assert_eq!(status, 202, "submit A: {doc:?}");
    let id_a = doc.get("id").unwrap().as_str().unwrap().to_string();
    wait_done(addr, &id_a);
    let (status, profile) =
        client::request(addr, "GET", &format!("/v1/jobs/{id_a}/profile"), None).unwrap();
    assert_eq!(status, 200, "profile fetch: {profile}");

    // Job B embeds that profile inline, with staleness discounting.
    let profile_doc: serde_json::Value = serde_json::from_str(&profile).unwrap();
    let staleness = serde_json::json!({ "decay": 0.5, "variance_inflation": 2.0 });
    let mut spec_b: serde_json::Value = serde_json::from_str(spec_a).unwrap();
    let map = spec_b.as_object_mut().unwrap();
    map.remove("profile");
    map.insert("warm_start".into(), profile_doc);
    map.insert("staleness".into(), staleness);
    let spec_b_text = serde_json::to_string(&spec_b).unwrap();
    let (status, doc) = client::request_json(addr, "POST", "/v1/jobs", Some(&spec_b_text)).unwrap();
    assert_eq!(status, 202, "submit B: {doc:?}");
    let id_b = doc.get("id").unwrap().as_str().unwrap().to_string();
    wait_done(addr, &id_b);
    let (status, served) =
        client::request(addr, "GET", &format!("/v1/jobs/{id_b}/report"), None).unwrap();
    assert_eq!(status, 200);
    server.shutdown();

    // Oracle: an in-process warm-started session with the same profile
    // must produce the identical bytes.
    let oracle_dir = data_dir.join("oracle");
    std::fs::create_dir_all(&oracle_dir).unwrap();
    let warm_path = oracle_dir.join("warm-start.json");
    std::fs::write(&warm_path, &profile).unwrap();
    let spec = JobSpec::from_json(&spec_b_text).unwrap();
    let session = SessionConfig::new()
        .with_checkpoint_dir(&oracle_dir)
        .with_warm_start(&warm_path)
        .with_staleness(StalenessPolicy::fresh().with_decay(0.5).with_variance_inflation(2.0));
    let expected = Autotuner::new(spec.options())
        .tune_session(&spec.workloads(), &session)
        .expect("oracle session")
        .to_json_string();
    assert_eq!(served, expected, "warm-started report must match the in-process session");

    std::fs::remove_dir_all(&data_dir).unwrap();
}

//! # critter-testkit
//!
//! Executable conformance oracles for the critter-rs stack. Where the unit
//! tests of the individual crates check local contracts, this crate checks
//! the *statistical* claims the paper's framework rests on, end to end
//! against the real simulator and autotuner:
//!
//! * **CI coverage** (`tests/ci_coverage.rs`) — the per-kernel confidence
//!   intervals must cover the noise model's true mean at their nominal rate;
//! * **√k scaling** (`tests/sqrt_k_scaling.rs`) — inflating the critical-path
//!   count `k` must cut samples-to-convergence like `1/k`;
//! * **policy conformance** (`tests/policy_conformance.rs`) — every selective
//!   policy must land within the ε-derived bound of the Full-policy winner,
//!   and skip fractions must respect the paper's policy ordering;
//! * **schedule-perturbation fuzzing** (`tests/perturbation_fuzz.rs`) —
//!   random wall-clock yields/delays in the rank threads must leave every
//!   report bit-identical, plus metamorphic symmetries (rank relabeling,
//!   grid-dimension permutation) under a noise-free machine;
//! * **golden reports** (`tests/golden_reports.rs`) — small Cholesky/QR
//!   tunes serialized against committed JSON fixtures, regenerated with
//!   `CRITTER_BLESS=1` or `cargo run -p critter-testkit --bin bless`.
//!
//! This library crate holds the shared machinery: kernel-sample collection
//! through the real interception layer, the noise model's analytic truth,
//! the golden-tune definitions, and the snapshot check/bless helper.

#![deny(missing_docs)]

use std::sync::Arc;

use critter_algs::Workload;
use critter_autotune::{Autotuner, TuningOptions, TuningReport, TuningSpace};
use critter_core::{ComputeOp, CritterConfig, CritterEnv, ExecutionPolicy, KernelStore};
use critter_machine::{KernelClass, MachineModel, MachineParams, NoiseParams};
use critter_sim::{run_simulation, SimConfig};

/// The probe kernel every sampling helper uses: a square GEMM tile.
pub const PROBE_M: usize = 16;
/// Probe tile width.
pub const PROBE_N: usize = 16;
/// Probe tile depth.
pub const PROBE_K: usize = 16;

/// Flop count of the probe kernel.
pub fn probe_flops() -> f64 {
    2.0 * (PROBE_M * PROBE_N * PROBE_K) as f64
}

/// The single-rank noisy machine the statistical oracles sample from.
pub fn probe_machine(seed: u64) -> MachineModel {
    MachineModel::new(MachineParams::test_machine(), NoiseParams::cluster(), 1, seed, 0)
}

/// Collect `n` measured execution times of the probe kernel by running a
/// one-rank simulation through the full interception layer (`CritterEnv`
/// under the Full policy): every sample passes through `RankCtx::compute`,
/// the store's Welford accumulator, and the report plumbing — exactly the
/// path a tuning run takes.
pub fn sample_kernel_times(seed: u64, n: usize) -> Vec<f64> {
    let machine = probe_machine(seed).shared();
    let report = run_simulation(SimConfig::new(1), machine, move |ctx| {
        let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
        let samples: Vec<f64> = (0..n)
            .map(|_| env.kernel(ComputeOp::Gemm, PROBE_M, PROBE_N, PROBE_K, probe_flops(), || {}))
            .collect();
        let _ = env.finish();
        samples
    });
    report.outputs.into_iter().next().expect("one rank")
}

/// The analytic mean of the probe kernel's sampled time on `seed`'s machine:
/// `base_cost · node_factor(rank 0) · E[lognormal(0, σ)]`, with
/// `E[lognormal(0, σ)] = exp(σ²/2)`. This is the "truth" the CI-coverage
/// oracle checks the intervals against.
pub fn true_kernel_mean(seed: u64) -> f64 {
    let machine = probe_machine(seed);
    let base = machine.compute_time_exact(KernelClass::Gemm, probe_flops());
    let node = machine.noise().node_factor(machine.topology(), 0);
    let sigma = machine.noise().params().compute_sigma;
    base * node * (sigma * sigma / 2.0).exp()
}

/// One golden-tune definition: a named, fully pinned tuning sweep.
pub struct GoldenTune {
    /// Fixture stem (`fixtures/<name>.json`).
    pub name: &'static str,
    /// The configuration space swept.
    pub space: TuningSpace,
    /// Selective policy under test.
    pub policy: ExecutionPolicy,
    /// Confidence tolerance ε.
    pub epsilon: f64,
}

impl GoldenTune {
    /// Run the sweep. Everything is pinned (test machine, cluster noise,
    /// fixed seed, one repetition, serial schedule), so the resulting
    /// [`TuningReport`] — and therefore its canonical JSON — is a pure
    /// function of the codebase.
    pub fn run(&self) -> TuningReport {
        let mut opts = TuningOptions::new(self.policy, self.epsilon).with_test_machine();
        opts.reset_between_configs = self.space.resets_between_configs();
        let workloads: Vec<Arc<dyn Workload>> = self.space.smoke();
        Autotuner::new(opts).tune(&workloads)
    }
}

/// Name of the committed golden trace fixture
/// (`fixtures/trace-cholesky-online-eps25.json`).
pub const GOLDEN_TRACE_NAME: &str = "trace-cholesky-online-eps25";

/// The pinned observed sweep behind the golden trace fixture: a smoke-sized
/// SLATE-Cholesky tune under online propagation at ε = 0.25 with
/// observability recording on, serialized as a Chrome trace-event JSON.
/// Everything is pinned (test machine, cluster noise, fixed seed, serial
/// schedule), so the bytes are a pure function of the codebase — the trace
/// counterpart of the golden reports.
pub fn golden_trace() -> String {
    let mut opts = TuningOptions::new(ExecutionPolicy::OnlinePropagation, 0.25)
        .with_test_machine()
        .with_observe();
    let space = TuningSpace::SlateCholesky;
    opts.reset_between_configs = space.resets_between_configs();
    let report = Autotuner::new(opts).tune(&space.smoke());
    report.obs.expect("observed sweep").timeline.to_chrome_string()
}

/// The committed golden tunes: one small Cholesky sweep and one small QR
/// sweep, on different policies so both the local and online propagation
/// paths are pinned.
pub fn golden_tunes() -> Vec<GoldenTune> {
    vec![
        GoldenTune {
            name: "cholesky-local-eps25",
            space: TuningSpace::SlateCholesky,
            policy: ExecutionPolicy::LocalPropagation,
            epsilon: 0.25,
        },
        GoldenTune {
            name: "qr-online-eps25",
            space: TuningSpace::SlateQr,
            policy: ExecutionPolicy::OnlinePropagation,
            epsilon: 0.25,
        },
    ]
}

/// The golden HTTP scenario behind the `critter-serve` API contract
/// fixtures (`fixtures/serve-*.json`).
///
/// Drives a live in-process daemon on an ephemeral port through a pinned
/// conversation — submit the [`golden_tunes`] Cholesky sweep as a job,
/// wait for it, and probe every error class — and captures the response
/// documents. Everything in the scenario is deterministic (fresh data
/// dir, so the id is always `job-000001`; pinned spec; submit responses
/// snapshot the job before it is enqueued), so the captured bytes are a
/// pure function of the codebase, exactly like the golden reports.
pub mod serve_oracle {
    use std::net::SocketAddr;
    use std::path::PathBuf;
    use std::time::{Duration, Instant};

    use critter_serve::http::client;
    use critter_serve::{Server, ServerConfig};

    /// The job spec of the scenario: the same pinned sweep as the
    /// `cholesky-local-eps25` golden tune, so the report the daemon
    /// serves must be byte-identical to that committed fixture.
    pub const GOLDEN_JOB_SPEC: &str = r#"{
    "space": "slate-cholesky", "policy": "local", "epsilon": 0.25,
    "smoke": true, "machine": "test"
}"#;

    /// The captured scenario: fixture documents plus the served report.
    pub struct ServeScenario {
        /// `(fixture name, canonical bytes)` pairs for the bless flow.
        pub docs: Vec<(&'static str, String)>,
        /// The `GET /v1/jobs/job-000001/report` body, byte-for-byte.
        pub report: String,
    }

    fn fresh_data_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("critter-serve-oracle-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Wait until `id` reaches a terminal state; panics on `failed`.
    pub fn wait_done(addr: SocketAddr, id: &str) {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let (_, doc) = client::request_json(addr, "GET", &format!("/v1/jobs/{id}"), None)
                .expect("status poll");
            match doc.get("state").and_then(|s| s.as_str()) {
                Some("done") => return,
                Some("failed") => panic!("job {id} failed: {doc:?}"),
                _ => {}
            }
            assert!(Instant::now() < deadline, "job {id} never finished");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// The malformed-request table: every row must map to a typed 4xx —
    /// never a 5xx, never a connection drop. `(method, path, body)`.
    pub const MALFORMED_REQUESTS: [(&str, &str, Option<&str>); 14] = [
        ("POST", "/v1/jobs", Some("not json")),
        ("POST", "/v1/jobs", Some("[1, 2, 3]")),
        ("POST", "/v1/jobs", Some(r#"{"space": "slate-cholesky"}"#)),
        ("POST", "/v1/jobs", Some(r#"{"space": "hypercube", "policy": "local"}"#)),
        ("POST", "/v1/jobs", Some(r#"{"space": "slate-cholesky", "policy": "local", "bogus": 1}"#)),
        ("POST", "/v1/jobs", Some(r#"{"space": "slate-cholesky", "policy": "local", "reps": 0}"#)),
        (
            "POST",
            "/v1/jobs",
            Some(r#"{"space": "slate-cholesky", "policy": "local", "tenant": "team/a"}"#),
        ),
        (
            "POST",
            "/v1/jobs",
            Some(r#"{"space": "slate-cholesky", "policy": "local", "priority": 10}"#),
        ),
        (
            "POST",
            "/v1/jobs",
            Some(r#"{"space": "slate-cholesky", "policy": "local", "priority": "high"}"#),
        ),
        ("GET", "/v1/jobs/job-000001/events?since=soon", None),
        ("GET", "/v1/jobs/job-999999", None),
        ("DELETE", "/v1/jobs/job-000001", None), // already done: 409
        ("PUT", "/v1/jobs", None),
        ("GET", "/v1/nope", None),
    ];

    /// Run the scenario against a fresh daemon and capture its documents.
    pub fn run(tag: &str) -> ServeScenario {
        let data_dir = fresh_data_dir(tag);
        let mut config = ServerConfig::new(&data_dir);
        config.addr = "127.0.0.1:0".into();
        config.job_workers = 1;
        let server = Server::start(config).expect("daemon starts");
        let addr = server.addr();

        let (status, submit_body) =
            client::request(addr, "POST", "/v1/jobs", Some(GOLDEN_JOB_SPEC)).expect("submit");
        assert_eq!(status, 202, "submit must be accepted: {submit_body}");
        wait_done(addr, "job-000001");
        let (status, status_body) =
            client::request(addr, "GET", "/v1/jobs/job-000001", None).expect("status");
        assert_eq!(status, 200);
        let (status, health_body) =
            client::request(addr, "GET", "/v1/healthz", None).expect("healthz");
        assert_eq!(status, 200);
        let (status, report) =
            client::request(addr, "GET", "/v1/jobs/job-000001/report", None).expect("report");
        assert_eq!(status, 200);
        // The event log is complete once the job is done, so the captured
        // document pins the full queued → running → progress… → done
        // sequence with its seq numbering.
        let (status, events_body) =
            client::request(addr, "GET", "/v1/jobs/job-000001/events", None).expect("events");
        assert_eq!(status, 200);
        let (status, tenants_body) =
            client::request(addr, "GET", "/v1/tenants", None).expect("tenants");
        assert_eq!(status, 200);

        // The error table runs after the job is done so every row's
        // response is pinned (including the 409 on cancelling a done job).
        let mut rows = Vec::new();
        for (method, path, body) in MALFORMED_REQUESTS {
            let (status, response) =
                client::request_json(addr, method, path, body).expect("error-table request");
            assert!(
                (400..500).contains(&status),
                "{method} {path} must be a typed 4xx, got {status}"
            );
            let row = serde_json::json!({
                "method": method,
                "path": path,
                "request_body": body.unwrap_or(""),
                "status": status,
                "response": response,
            });
            rows.push(row);
        }
        let errors_doc = serde_json::json!({ "cases": serde_json::Value::Array(rows) });
        let mut errors_body =
            serde_json::to_string_pretty(&errors_doc).expect("json writer is total");
        errors_body.push('\n');

        server.shutdown();
        let _ = std::fs::remove_dir_all(&data_dir);
        ServeScenario {
            docs: vec![
                ("serve-submit", submit_body),
                ("serve-status-done", status_body),
                ("serve-healthz", health_body),
                ("serve-events", events_body),
                ("serve-tenants", tenants_body),
                ("serve-errors", errors_body),
            ],
            report,
        }
    }
}

/// Golden-snapshot bookkeeping.
pub mod golden {
    use std::path::PathBuf;

    /// Directory the committed fixtures live in.
    pub fn fixtures_dir() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
    }

    /// Whether the caller asked to regenerate fixtures instead of checking.
    pub fn blessing() -> bool {
        std::env::var("CRITTER_BLESS").map(|v| v == "1").unwrap_or(false)
    }

    /// Write `text` as the new fixture for `name`.
    pub fn bless(name: &str, text: &str) -> PathBuf {
        let dir = fixtures_dir();
        std::fs::create_dir_all(&dir).expect("create fixtures dir");
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, text).expect("write fixture");
        path
    }

    /// Compare `text` byte-for-byte against the committed fixture, or
    /// rewrite the fixture when `CRITTER_BLESS=1`. Panics with a contextual
    /// diff summary on mismatch.
    pub fn check_or_bless(name: &str, text: &str) {
        if blessing() {
            let path = bless(name, text);
            eprintln!("blessed {}", path.display());
            return;
        }
        let path = fixtures_dir().join(format!("{name}.json"));
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); regenerate with \
                 `cargo run -p critter-testkit --bin bless`",
                path.display()
            )
        });
        if committed != text {
            let diff_line = committed
                .lines()
                .zip(text.lines())
                .position(|(a, b)| a != b)
                .map(|i| i + 1)
                .unwrap_or_else(|| committed.lines().count().min(text.lines().count()) + 1);
            panic!(
                "golden report `{name}` drifted from {} (first differing line: {diff_line}).\n\
                 If the change is intentional, regenerate fixtures with\n\
                 `cargo run -p critter-testkit --bin bless` (or CRITTER_BLESS=1) and\n\
                 commit the diff.",
                path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = sample_kernel_times(7, 6);
        let b = sample_kernel_times(7, 6);
        let c = sample_kernel_times(8, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn true_mean_tracks_the_empirical_mean() {
        // Law-of-large-numbers sanity on the analytic truth: the empirical
        // mean of many simulator samples converges to `true_kernel_mean`.
        let samples = sample_kernel_times(3, 4000);
        let emp = samples.iter().sum::<f64>() / samples.len() as f64;
        let truth = true_kernel_mean(3);
        let rel = (emp - truth).abs() / truth;
        assert!(rel < 0.01, "empirical {emp} vs analytic {truth} (rel err {rel})");
    }

    #[test]
    fn golden_tunes_are_pure_functions_of_the_code() {
        for tune in golden_tunes() {
            let a = tune.run().to_json_string();
            let b = tune.run().to_json_string();
            assert_eq!(a, b, "golden tune {} must be deterministic", tune.name);
        }
    }
}

//! Regenerate the golden-report fixtures under `crates/testkit/fixtures/`.
//!
//! Run after an *intentional* behavioral change, then commit the diff:
//!
//! ```text
//! cargo run -p critter-testkit --bin bless
//! ```
//!
//! Equivalent: `CRITTER_BLESS=1 cargo test -p critter-testkit --test
//! golden_reports`.

fn main() {
    for tune in critter_testkit::golden_tunes() {
        let text = tune.run().to_json_string();
        let path = critter_testkit::golden::bless(tune.name, &text);
        println!("blessed {}", path.display());
    }
    let trace = critter_testkit::golden_trace();
    let path = critter_testkit::golden::bless(critter_testkit::GOLDEN_TRACE_NAME, &trace);
    println!("blessed {}", path.display());
    let scenario = critter_testkit::serve_oracle::run("bless");
    for (name, text) in &scenario.docs {
        let path = critter_testkit::golden::bless(name, text);
        println!("blessed {}", path.display());
    }
}

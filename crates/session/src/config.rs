//! Session configuration: the `with_*` builder for persistence and
//! warm-start behavior, and the staleness policy applied to reloaded
//! profiles.

use std::path::PathBuf;

use critter_core::KernelStore;
use critter_stats::OnlineStats;

/// How much to trust kernel statistics loaded from a previous session.
///
/// A persisted profile was measured on an earlier allocation, possibly
/// days ago; its means are still the best available prior, but its sample
/// counts overstate the current confidence. The policy discounts both:
/// sample counts are decayed multiplicatively and the sample variance is
/// inflated, which widens every confidence interval and makes the
/// execute-at-least-once machinery re-verify each kernel sooner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalenessPolicy {
    /// Multiplier on each model's sample count (clamped to `0.0..=1.0`;
    /// 1.0 keeps the counts as persisted).
    pub decay: f64,
    /// Multiplier on each model's sample variance (clamped to `>= 1.0`;
    /// 1.0 keeps the variance as persisted).
    pub variance_inflation: f64,
}

impl Default for StalenessPolicy {
    fn default() -> Self {
        StalenessPolicy { decay: 1.0, variance_inflation: 1.0 }
    }
}

impl StalenessPolicy {
    /// Full trust: reloaded models are used exactly as persisted.
    pub fn fresh() -> Self {
        Self::default()
    }

    /// Set the sample-count decay factor.
    pub fn with_decay(mut self, decay: f64) -> Self {
        self.decay = decay.clamp(0.0, 1.0);
        self
    }

    /// Set the variance inflation factor.
    pub fn with_variance_inflation(mut self, inflation: f64) -> Self {
        self.variance_inflation = inflation.max(1.0);
        self
    }

    /// True when applying the policy would change nothing.
    pub fn is_fresh(&self) -> bool {
        self.decay >= 1.0 && self.variance_inflation <= 1.0
    }

    /// Discount one model's statistics in place. The mean and the observed
    /// min/max are preserved; the count shrinks (never below 1 for a
    /// non-empty model) and the variance grows per the policy.
    pub fn apply_stats(&self, stats: &mut OnlineStats) {
        let n = stats.count();
        if n == 0 || self.is_fresh() {
            return;
        }
        let decayed = ((n as f64 * self.decay).floor() as u64).clamp(1, n);
        // Variance is m2 / (n - 1); keep it meaningful under the new count
        // and inflate it, so the confidence interval widens on both axes.
        let variance = if n > 1 { stats.m2() / (n - 1) as f64 } else { 0.0 };
        let m2 = variance * self.variance_inflation * (decayed.saturating_sub(1)) as f64;
        let mean = stats.mean();
        *stats = OnlineStats::from_parts(
            decayed,
            mean,
            m2,
            stats.min(),
            stats.max(),
            mean * decayed as f64,
        );
    }

    /// Discount every model of every rank's store; returns the number of
    /// models touched (the `arg` of the driver's `warm_start` obs event).
    pub fn apply(&self, stores: &mut [KernelStore]) -> u64 {
        let mut models = 0u64;
        for store in stores.iter_mut() {
            for model in store.local.values_mut() {
                self.apply_stats(&mut model.stats);
                models += 1;
            }
        }
        models
    }
}

/// Where a tuning session persists its state and how it reuses a previous
/// session's.
///
/// The default configuration is fully ephemeral — nothing touches disk —
/// so `tune_session` with `SessionConfig::new()` behaves exactly like a
/// plain `tune`.
///
/// # Examples
///
/// ```
/// use critter_session::{SessionConfig, StalenessPolicy};
///
/// let cfg = SessionConfig::new()
///     .with_checkpoint_dir("/tmp/sweep-ckpt")
///     .with_checkpoint_every(4)
///     .with_staleness(StalenessPolicy::fresh().with_decay(0.5));
/// assert!(cfg.is_persistent());
/// assert_eq!(cfg.checkpoint_every, 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[non_exhaustive]
pub struct SessionConfig {
    /// Directory checkpoints are written to (`checkpoint.json` plus the
    /// `session.log` event log). `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a checkpoint every this many completed `(config, rep)` units
    /// (0 and 1 both mean every unit). Config boundaries always checkpoint.
    pub checkpoint_every: u64,
    /// Profile to seed kernel models from before the sweep starts.
    pub warm_start: Option<PathBuf>,
    /// Where to persist the final kernel-model profile of this session.
    pub profile_out: Option<PathBuf>,
    /// Directory of a shared content-addressed profile store
    /// (`critter-store`): warm-start from it when no file warm start is
    /// given, and publish the final models back into it at sweep end.
    pub store: Option<PathBuf>,
    /// Discounting applied to warm-started models.
    pub staleness: StalenessPolicy,
}

impl SessionConfig {
    /// An ephemeral session: no checkpoints, no profiles.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable checkpointing into `dir`.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Set the checkpoint cadence in completed `(config, rep)` units.
    pub fn with_checkpoint_every(mut self, units: u64) -> Self {
        self.checkpoint_every = units;
        self
    }

    /// Warm-start kernel models from the profile at `path`.
    pub fn with_warm_start(mut self, path: impl Into<PathBuf>) -> Self {
        self.warm_start = Some(path.into());
        self
    }

    /// Persist the final kernel models to `path` when the sweep completes.
    pub fn with_profile_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.profile_out = Some(path.into());
        self
    }

    /// Set the staleness policy for warm-started models.
    pub fn with_staleness(mut self, staleness: StalenessPolicy) -> Self {
        self.staleness = staleness;
        self
    }

    /// Attach a shared profile-store directory: seed kernel models from
    /// it (when no explicit `warm_start` file takes precedence) and
    /// publish the session's final models back into it as one atomic
    /// batch commit.
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store = Some(dir.into());
        self
    }

    /// True when any part of the session touches disk.
    pub fn is_persistent(&self) -> bool {
        self.checkpoint_dir.is_some()
            || self.warm_start.is_some()
            || self.profile_out.is_some()
            || self.store.is_some()
    }

    /// Path of the checkpoint file, when checkpointing is enabled.
    pub fn checkpoint_path(&self) -> Option<PathBuf> {
        self.checkpoint_dir.as_ref().map(|d| d.join("checkpoint.json"))
    }

    /// Path of the session event log, when checkpointing is enabled.
    pub fn log_path(&self) -> Option<PathBuf> {
        self.checkpoint_dir.as_ref().map(|d| d.join("session.log"))
    }

    /// The effective checkpoint cadence (`checkpoint_every` with 0 meaning 1).
    pub fn cadence(&self) -> u64 {
        self.checkpoint_every.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_core::signature::{ComputeOp, KernelSig};

    #[test]
    fn builder_chains() {
        let cfg = SessionConfig::new()
            .with_checkpoint_dir("ck")
            .with_checkpoint_every(3)
            .with_warm_start("profile.json")
            .with_profile_out("out.json");
        assert!(cfg.is_persistent());
        assert_eq!(cfg.checkpoint_path().unwrap(), PathBuf::from("ck/checkpoint.json"));
        assert_eq!(cfg.log_path().unwrap(), PathBuf::from("ck/session.log"));
        assert_eq!(cfg.cadence(), 3);
        assert_eq!(SessionConfig::new().cadence(), 1);
        assert!(!SessionConfig::new().is_persistent());
        let store_only = SessionConfig::new().with_store("store-dir");
        assert!(store_only.is_persistent());
        assert_eq!(store_only.store.as_deref(), Some(std::path::Path::new("store-dir")));
    }

    #[test]
    fn staleness_decays_counts_and_inflates_variance() {
        let mut store = KernelStore::new();
        let sig = KernelSig::compute(ComputeOp::Gemm, 8, 8, 8);
        for i in 0..10 {
            store.record(&sig, 1.0 + (i as f64) * 0.01);
        }
        let before = store.model(sig.key()).unwrap().stats;
        let policy = StalenessPolicy::fresh().with_decay(0.5).with_variance_inflation(4.0);
        let touched = policy.apply(std::slice::from_mut(&mut store));
        assert_eq!(touched, 1);
        let after = &store.model(sig.key()).unwrap().stats;
        assert_eq!(after.count(), 5);
        assert_eq!(after.mean(), before.mean());
        assert_eq!(after.min(), before.min());
        assert_eq!(after.max(), before.max());
        let var_before = before.m2() / 9.0;
        let var_after = after.m2() / 4.0;
        assert!((var_after / var_before - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fresh_policy_is_identity() {
        let mut store = KernelStore::new();
        let sig = KernelSig::compute(ComputeOp::Trsm, 4, 4, 4);
        store.record(&sig, 2.0);
        let before = store.model(sig.key()).unwrap().stats;
        StalenessPolicy::fresh().apply(std::slice::from_mut(&mut store));
        let after = &store.model(sig.key()).unwrap().stats;
        assert_eq!(after.count(), before.count());
        assert_eq!(after.m2().to_bits(), before.m2().to_bits());
        // A decayed singleton keeps its one sample.
        let mut one = OnlineStats::new();
        one.push(1.5);
        StalenessPolicy::fresh().with_decay(0.01).apply_stats(&mut one);
        assert_eq!(one.count(), 1);
    }
}

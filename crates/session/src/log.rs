//! The session event log: an append-only JSON-lines file recording every
//! lifecycle decision a persistent session makes.
//!
//! Checkpoint writes, restores, and warm-starts are *session* facts, not
//! sweep facts — an uninterrupted sweep and a killed-and-resumed sweep
//! must produce byte-identical [`TuningReport`]s, so these events cannot
//! enter the report's obs timeline. They land here instead, one
//! [`critter_obs::Event`] per line, so the operator can reconstruct what
//! the session did without perturbing what it computed.
//!
//! [`TuningReport`]: https://docs.rs/critter-autotune

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use critter_core::{CritterError, Result};
use critter_obs::{Event, EventKind};

/// An append-only session event log at a fixed path.
#[derive(Debug, Clone)]
pub struct SessionLog {
    path: PathBuf,
}

impl SessionLog {
    /// A log writing to `path` (created on first record).
    pub fn at(path: impl Into<PathBuf>) -> Self {
        SessionLog { path: path.into() }
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one lifecycle event (`start`/`dur` are 0: lifecycle events
    /// carry no virtual time).
    pub fn record(&self, kind: EventKind, label: &str, arg: f64) -> Result<()> {
        let event = Event { kind, label: label.into(), start: 0.0, dur: 0.0, arg };
        let mut line = serde_json::to_string(&event.to_json()).expect("json writer is total");
        line.push('\n');
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| CritterError::io(&self.path, e))?;
        file.write_all(line.as_bytes()).map_err(|e| CritterError::io(&self.path, e))
    }

    /// Read the log back as events (for tests and tooling).
    pub fn read(&self) -> Result<Vec<Event>> {
        let text =
            std::fs::read_to_string(&self.path).map_err(|e| CritterError::io(&self.path, e))?;
        text.lines()
            .map(|line| {
                let v = serde_json::from_str(line).map_err(|e| {
                    CritterError::parse(self.path.display().to_string(), e.to_string())
                })?;
                Event::from_json(&v)
                    .map_err(|e| CritterError::schema(self.path.display().to_string(), e))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_appends_and_reads_back() {
        let dir = std::env::temp_dir().join("critter-session-log-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.log");
        let _ = std::fs::remove_file(&path);
        let log = SessionLog::at(&path);
        log.record(EventKind::Checkpoint, "unit 3", 3.0).unwrap();
        log.record(EventKind::Restore, "resume", 3.0).unwrap();
        let events = log.read().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Checkpoint);
        assert_eq!(events[1].kind, EventKind::Restore);
        assert_eq!(events[1].arg, 3.0);
        std::fs::remove_file(&path).unwrap();
    }
}

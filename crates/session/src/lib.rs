//! # critter-session
//!
//! Fault-tolerant tuning *sessions* on top of the critter stack: the
//! persistence layer that lets a long exhaustive-search sweep survive a
//! mid-flight kill and resume to a byte-identical [`TuningReport`], and
//! lets one session's kernel models *warm-start* the next.
//!
//! The crate is deliberately below `critter-autotune` in the dependency
//! graph: it owns the on-disk formats and policies (what a checkpoint *is*),
//! while the driver owns the resume state machine (when one is taken).
//! Three pieces:
//!
//! * [`SessionConfig`] — the `with_*` builder describing where checkpoints
//!   and profiles live and how often the driver writes them;
//! * [`envelope`] — the versioned, content-hashed JSON envelope every
//!   session artifact is sealed in ([`envelope::seal`]/[`envelope::open`]);
//! * [`profile`] — persistent kernel-model profiles: save a sweep's
//!   [`critter_core::KernelStore`]s, reload them later, and apply a
//!   [`StalenessPolicy`] before seeding a new sweep.
//!
//! Everything rides on the canonical JSON writer/parser pair (sorted keys,
//! shortest-round-trip floats, correctly rounded parse), so a value that
//! goes to disk and back is *bit-identical* — the property the kill/resume
//! oracle in `critter-testkit` asserts end to end.
//!
//! [`TuningReport`]: https://docs.rs/critter-autotune

#![deny(missing_docs)]

pub mod config;
pub mod envelope;
pub mod log;
pub mod profile;
pub mod store;

pub use config::{SessionConfig, StalenessPolicy};
pub use log::SessionLog;

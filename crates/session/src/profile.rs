//! Persistent kernel-model profiles: one session's `K̄` statistics saved
//! for the next session to warm-start from.
//!
//! A profile is the per-rank [`KernelStore`] vector of a finished sweep,
//! snapshotted through `critter_core::snapshot` and sealed in a
//! [`crate::envelope`]. Because the snapshot codec and the JSON
//! writer/parser pair are bit-exact, `load(save(stores))` reproduces the
//! stores' canonical form byte for byte.

use std::path::Path;

use critter_core::{snapshot, CritterError, KernelStore, Result};

use crate::config::StalenessPolicy;
use crate::{envelope, store};

/// Persist `stores` as a profile at `path` (atomic write).
pub fn save(path: &Path, fingerprint: u64, stores: &[KernelStore]) -> Result<()> {
    let doc = envelope::seal("profile", fingerprint, snapshot::stores_to_json(stores));
    store::write_value(path, &doc)
}

/// Load a profile. `fingerprint` is optional: profiles are deliberately
/// reusable across sweeps with different options (that is the entire point
/// of warm-starting), so most callers pass `None` and rely on the content
/// hash plus the rank-count check in [`warm_start`].
pub fn load(path: &Path, fingerprint: Option<u64>) -> Result<Vec<KernelStore>> {
    let doc = store::read_value(path)?;
    let payload = envelope::open(&doc, "profile", fingerprint)?;
    snapshot::stores_from_json(payload)
}

/// Load a profile, verify it matches the sweep's rank count, and apply the
/// staleness policy. Returns the seeded stores and the number of kernel
/// models they carry (the `arg` of the driver's `warm_start` obs event).
pub fn warm_start(
    path: &Path,
    ranks: usize,
    staleness: &StalenessPolicy,
) -> Result<(Vec<KernelStore>, u64)> {
    let mut stores = load(path, None)?;
    if stores.len() != ranks {
        return Err(CritterError::mismatch(format!(
            "profile at {} holds {} rank stores but the sweep uses {} ranks",
            path.display(),
            stores.len(),
            ranks
        )));
    }
    let models = staleness.apply(&mut stores);
    Ok((stores, models))
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_core::signature::{ComputeOp, KernelSig};

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("critter-session-profile-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn busy_stores() -> Vec<KernelStore> {
        (0..2)
            .map(|rank| {
                let mut s = KernelStore::new();
                let sig = KernelSig::compute(ComputeOp::Gemm, 8, 8, 8);
                for i in 0..6 {
                    s.record(&sig, 0.1 * (rank + 1) as f64 + i as f64 * 1e-3);
                }
                s.schedule(&sig);
                s
            })
            .collect()
    }

    #[test]
    fn save_load_round_trips_canonically() {
        let path = scratch("profile.json");
        let stores = busy_stores();
        save(&path, 99, &stores).unwrap();
        let back = load(&path, Some(99)).unwrap();
        assert_eq!(
            serde_json::to_string(&snapshot::stores_to_json(&back)).unwrap(),
            serde_json::to_string(&snapshot::stores_to_json(&stores)).unwrap()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn warm_start_checks_rank_count_and_applies_staleness() {
        let path = scratch("warm.json");
        save(&path, 0, &busy_stores()).unwrap();
        let err = warm_start(&path, 4, &StalenessPolicy::fresh()).unwrap_err();
        assert!(matches!(err, CritterError::Mismatch { .. }), "got: {err}");
        let policy = StalenessPolicy::fresh().with_decay(0.5);
        let (stores, models) = warm_start(&path, 2, &policy).unwrap();
        assert_eq!(models, 2);
        let key = KernelSig::compute(ComputeOp::Gemm, 8, 8, 8).key();
        assert_eq!(stores[0].model(key).unwrap().stats.count(), 3);
        std::fs::remove_file(&path).unwrap();
    }
}

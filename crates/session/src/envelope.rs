//! The versioned, content-hashed envelope every session artifact is sealed
//! in before touching disk.
//!
//! An envelope is a canonical JSON object
//! `{"fingerprint", "hash", "kind", "payload", "schema"}`:
//!
//! * `schema` is the format version tag ([`SCHEMA`]); a reader refuses
//!   envelopes from a different schema generation outright;
//! * `kind` distinguishes artifact types (`"profile"`, `"checkpoint"`);
//! * `fingerprint` binds the artifact to the tuning options that produced
//!   it, so a checkpoint can never resume a sweep it does not describe;
//! * `hash` is an FNV digest of the canonical text of everything else,
//!   which catches truncated or hand-edited files before any state is
//!   restored from them.

use critter_core::fnv::fnv_hash;
use critter_core::{CritterError, Result};
use serde_json::Value;

/// Format version tag checked by [`open`].
pub const SCHEMA: &str = "critter-session/v1";

/// Mask keeping hashes inside the integers canonical JSON round-trips
/// exactly (the same 52-bit guarantee `KernelSig::key` relies on).
const HASH_MASK: u64 = (1 << 52) - 1;

fn digest(kind: &str, fingerprint: u64, payload: &Value) -> u64 {
    let body = serde_json::json!({
        "fingerprint": fingerprint,
        "kind": kind,
        "payload": payload.clone(),
        "schema": SCHEMA,
    });
    fnv_hash(&serde_json::to_string(&body).expect("json writer is total")) & HASH_MASK
}

/// Seal `payload` into a versioned envelope of the given `kind`.
///
/// # Examples
///
/// ```
/// use critter_session::envelope;
///
/// let doc = envelope::seal("profile", 7, serde_json::json!({"v": 1.5}));
/// let payload = envelope::open(&doc, "profile", Some(7)).unwrap();
/// assert_eq!(payload.get("v").and_then(|x| x.as_f64()), Some(1.5));
/// assert!(envelope::open(&doc, "checkpoint", Some(7)).is_err());
/// assert!(envelope::open(&doc, "profile", Some(8)).is_err());
/// ```
pub fn seal(kind: &str, fingerprint: u64, payload: Value) -> Value {
    let hash = digest(kind, fingerprint, &payload);
    serde_json::json!({
        "fingerprint": fingerprint,
        "hash": hash,
        "kind": kind,
        "payload": payload,
        "schema": SCHEMA,
    })
}

/// Verify an envelope and return its payload.
///
/// Checks, in order: the schema tag, the artifact `kind`, the content
/// hash, and — when `fingerprint` is given — the options fingerprint.
/// Schema/kind/hash failures are [`CritterError::Schema`]; a fingerprint
/// disagreement is [`CritterError::Mismatch`] (the file is valid, it just
/// belongs to a different sweep).
pub fn open<'a>(doc: &'a Value, kind: &str, fingerprint: Option<u64>) -> Result<&'a Value> {
    let str_field = |key: &str| {
        doc.get(key)
            .and_then(|x| x.as_str())
            .ok_or_else(|| CritterError::schema("envelope", format!("bad key `{key}`")))
    };
    let u64_field = |key: &str| {
        doc.get(key)
            .and_then(|x| x.as_u64())
            .ok_or_else(|| CritterError::schema("envelope", format!("bad key `{key}`")))
    };
    let schema = str_field("schema")?;
    if schema != SCHEMA {
        return Err(CritterError::schema(
            "envelope",
            format!("unsupported schema `{schema}` (expected `{SCHEMA}`)"),
        ));
    }
    let found_kind = str_field("kind")?;
    if found_kind != kind {
        return Err(CritterError::schema(
            "envelope",
            format!("artifact kind `{found_kind}` (expected `{kind}`)"),
        ));
    }
    let found_fp = u64_field("fingerprint")?;
    let payload =
        doc.get("payload").ok_or_else(|| CritterError::schema("envelope", "bad key `payload`"))?;
    let hash = u64_field("hash")?;
    if hash != digest(kind, found_fp, payload) {
        return Err(CritterError::schema("envelope", "content hash mismatch (corrupt file)"));
    }
    if let Some(expect) = fingerprint {
        if found_fp != expect {
            return Err(CritterError::mismatch(format!(
                "envelope fingerprint {found_fp} does not match the active options ({expect})"
            )));
        }
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trip() {
        let doc = seal("checkpoint", 42, serde_json::json!({"units": 3}));
        let payload = open(&doc, "checkpoint", Some(42)).unwrap();
        assert_eq!(payload.get("units").and_then(|x| x.as_u64()), Some(3));
        // Fingerprint check is optional.
        assert!(open(&doc, "checkpoint", None).is_ok());
    }

    #[test]
    fn tampering_is_detected() {
        let mut doc = seal("profile", 1, serde_json::json!({"n": 1}));
        if let Value::Object(m) = &mut doc {
            m.insert("payload".into(), serde_json::json!({"n": 2}));
        }
        let err = open(&doc, "profile", None).unwrap_err();
        assert!(err.to_string().contains("hash mismatch"), "got: {err}");
    }

    #[test]
    fn wrong_schema_and_kind_are_rejected() {
        let mut doc = seal("profile", 1, Value::Null);
        assert!(open(&doc, "checkpoint", None).is_err());
        if let Value::Object(m) = &mut doc {
            m.insert("schema".into(), serde_json::json!("critter-session/v0"));
        }
        let err = open(&doc, "profile", None).unwrap_err();
        assert!(err.to_string().contains("unsupported schema"), "got: {err}");
        assert!(open(&Value::Null, "profile", None).is_err());
    }

    #[test]
    fn fingerprint_mismatch_is_a_mismatch_error() {
        let doc = seal("checkpoint", 5, Value::Null);
        let err = open(&doc, "checkpoint", Some(6)).unwrap_err();
        assert!(matches!(err, CritterError::Mismatch { .. }), "got: {err}");
    }
}

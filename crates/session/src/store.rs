//! Atomic on-disk persistence of canonical JSON documents.
//!
//! Checkpoints are overwritten in place many times per sweep; a kill in
//! the middle of a write must never leave a half-written file where the
//! resume path expects a valid one. Every write therefore goes to a
//! sibling temp file first and is published with an atomic `rename`.

use std::fs;
use std::path::Path;

use critter_core::{CritterError, Result};
use serde_json::Value;

/// Write `text` to `path` atomically (temp file + rename).
pub fn write_atomic(path: &Path, text: &str) -> Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, text).map_err(|e| CritterError::io(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| CritterError::io(path, e))
}

/// Serialize `doc` as canonical pretty-printed JSON (trailing newline
/// included) and write it atomically.
pub fn write_value(path: &Path, doc: &Value) -> Result<()> {
    let mut text = serde_json::to_string_pretty(doc).expect("json writer is total");
    text.push('\n');
    write_atomic(path, &text)
}

/// Read and parse a canonical JSON document.
pub fn read_value(path: &Path) -> Result<Value> {
    let text = fs::read_to_string(path).map_err(|e| CritterError::io(path, e))?;
    serde_json::from_str(&text)
        .map_err(|e| CritterError::parse(path.display().to_string(), e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("critter-session-store-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_read_round_trip() {
        let path = scratch("roundtrip.json");
        let doc = serde_json::json!({"a": 0.1, "b": [1.0, 2.0, 3.0]});
        write_value(&path, &doc).unwrap();
        let back = read_value(&path).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), serde_json::to_string(&doc).unwrap());
        // Overwrite goes through the same atomic path.
        write_value(&path, &serde_json::json!({"a": 2})).unwrap();
        let back = read_value(&path).unwrap();
        assert_eq!(back.get("a").and_then(|x| x.as_u64()), Some(2));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_value(Path::new("/definitely/not/here.json")).unwrap_err();
        assert!(matches!(err, CritterError::Io { .. }), "got: {err}");
    }

    #[test]
    fn malformed_file_is_a_parse_error() {
        let path = scratch("malformed.json");
        fs::write(&path, "{not json").unwrap();
        let err = read_value(&path).unwrap_err();
        assert!(matches!(err, CritterError::Parse { .. }), "got: {err}");
        fs::remove_file(&path).unwrap();
    }
}

//! Confidence intervals for kernel execution time, including the paper's
//! path-count-scaled variant.
//!
//! §III-A: a kernel (routine + input size) is modeled as i.i.d. draws of a
//! random variable `X`. After `n` locally collected samples, the half-width of
//! the two-sided interval on `E[X]` is `t*(level, n-1) · s / √n`. The paper's
//! *relative* criterion `ε̃ = CI size / mean ≤ ε` decides when a kernel becomes
//! predictable and execution can stop.
//!
//! The twist that makes the framework fast: if the kernel appears `k` times
//! along the current sub-critical path, the quantity we actually need to
//! predict is the *sum* `T` of those `k` occurrences, whose relative error
//! shrinks by `√k`. The paper writes this as assigning variance `σ²/k` to the
//! kernel's contribution — `Var[T] ≈ k^{-3/2} Σ (w̄ - wᵢ)²` in their §III-A
//! estimator — so the effective criterion divides the relative half-width by
//! `√k`. [`ConfidenceInterval::relative_scaled`] implements exactly that.

use parking_lot::Mutex;
use std::collections::HashMap;

use crate::special::{normal_critical, student_t_critical};
use crate::welford::OnlineStats;

/// A two-sided confidence level, with cached Student-t critical values.
///
/// Tuning runs evaluate the same `(level, dof)` pairs millions of times; the
/// bisection-based t quantile is exact but not free, so critical values are
/// memoized per integer dof behind a small mutex-protected map (uncontended in
/// practice: each rank thread hits the cache read path).
#[derive(Debug)]
pub struct ConfidenceLevel {
    level: f64,
    z: f64,
    cache: Mutex<HashMap<u64, f64>>,
}

impl ConfidenceLevel {
    /// A new confidence level, e.g. `0.95` for the paper's experiments.
    pub fn new(level: f64) -> Self {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in the open interval (0,1), got {level}"
        );
        ConfidenceLevel { level, z: normal_critical(level), cache: Mutex::new(HashMap::new()) }
    }

    /// The level itself (e.g. 0.95).
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Critical value for `n` samples: Student-t with `n-1` dof for small `n`,
    /// converging to the normal value for large `n`.
    pub fn critical(&self, n: u64) -> f64 {
        if n < 2 {
            return f64::INFINITY; // one sample says nothing about spread
        }
        let dof = n - 1;
        if dof >= 200 {
            return self.z;
        }
        // One guard for the whole lookup-or-compute: taking the lock twice
        // would both recompute the bisection under contention (TOCTOU) and
        // pay two acquisitions on every miss.
        let mut cache = self.cache.lock();
        *cache.entry(dof).or_insert_with(|| student_t_critical(self.level, dof as f64))
    }
}

impl Clone for ConfidenceLevel {
    fn clone(&self) -> Self {
        ConfidenceLevel {
            level: self.level,
            z: self.z,
            cache: Mutex::new(self.cache.lock().clone()),
        }
    }
}

impl Default for ConfidenceLevel {
    /// The paper's 95% level.
    fn default() -> Self {
        ConfidenceLevel::new(0.95)
    }
}

/// A computed two-sided confidence interval on a kernel's mean time.
///
/// # Examples
///
/// ```
/// use critter_stats::{ConfidenceInterval, ConfidenceLevel, OnlineStats};
///
/// let stats = OnlineStats::from_slice(&[9.0, 10.0, 11.0, 10.0]);
/// let level = ConfidenceLevel::new(0.95);
/// let ci = ConfidenceInterval::from_stats(&stats, &level);
/// assert!(ci.lo() < 10.0 && 10.0 < ci.hi());
///
/// // The paper's relative criterion ε̃ = CI size / mean, and its
/// // path-count-scaled variant: k occurrences on the critical path tighten
/// // the effective criterion by √k (§III-A).
/// assert!(ci.relative() > ci.relative_scaled(4));
/// assert!((ci.relative_scaled(4) - ci.relative() / 2.0).abs() < 1e-12);
///
/// // Too few samples ⇒ an infinite interval: never predictable.
/// let one = ConfidenceInterval::from_stats(&OnlineStats::from_slice(&[1.0]), &level);
/// assert!(!one.predictable(0.5, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Sample mean the interval is centred on.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Interval on `E[X]` from locally accumulated statistics.
    pub fn from_stats(stats: &OnlineStats, level: &ConfidenceLevel) -> Self {
        let n = stats.count();
        let half = if n < 2 { f64::INFINITY } else { level.critical(n) * stats.std_error() };
        ConfidenceInterval { mean: stats.mean(), half_width: half }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// The paper's relative criterion `ε̃`: full interval size divided by the
    /// mean. Infinite when the mean is not positive or too few samples exist.
    pub fn relative(&self) -> f64 {
        if self.mean <= 0.0 {
            f64::INFINITY
        } else {
            2.0 * self.half_width / self.mean
        }
    }

    /// Relative criterion scaled by the critical-path execution count `k`
    /// (§III-A): predicting the *sum* of `k` occurrences tightens the relative
    /// error by `√k`, so the effective `ε̃` is `relative() / √k`.
    pub fn relative_scaled(&self, path_count: u64) -> f64 {
        if path_count == 0 {
            self.relative()
        } else {
            self.relative() / (path_count as f64).sqrt()
        }
    }

    /// Whether the (possibly path-scaled) criterion meets tolerance `epsilon`.
    pub fn predictable(&self, epsilon: f64, path_count: u64) -> bool {
        self.relative_scaled(path_count) <= epsilon
    }
}

/// The paper's §III-A variance estimator for the combined time `T` of `k`
/// same-signature kernels on one path: `Var[T] ≈ k^{-3/2} · Σ (w̄ - wᵢ)²`,
/// computed from single-pass statistics (`Σ(w̄-wᵢ)² = (n-1)·s²`).
pub fn path_variance(stats: &OnlineStats, path_count: u64) -> f64 {
    if stats.count() < 2 || path_count == 0 {
        return 0.0;
    }
    let ss = stats.variance() * (stats.count() - 1) as f64;
    ss / (path_count as f64).powf(1.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(xs: &[f64]) -> OnlineStats {
        OnlineStats::from_slice(xs)
    }

    #[test]
    fn interval_width_shrinks_with_samples() {
        let level = ConfidenceLevel::default();
        let base = [10.0, 10.5, 9.5, 10.2, 9.8];
        let small = ConfidenceInterval::from_stats(&stats_of(&base), &level);
        let mut many = Vec::new();
        for _ in 0..20 {
            many.extend_from_slice(&base);
        }
        let big = ConfidenceInterval::from_stats(&stats_of(&many), &level);
        assert!(big.half_width < small.half_width);
        assert!((big.mean - small.mean).abs() < 1e-9);
    }

    #[test]
    fn one_sample_is_never_predictable() {
        let level = ConfidenceLevel::default();
        let ci = ConfidenceInterval::from_stats(&stats_of(&[3.0]), &level);
        assert!(ci.half_width.is_infinite());
        assert!(!ci.predictable(1e9, 1));
    }

    #[test]
    fn zero_variance_immediately_predictable() {
        let level = ConfidenceLevel::default();
        let ci = ConfidenceInterval::from_stats(&stats_of(&[2.0, 2.0, 2.0]), &level);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.predictable(0.001, 1));
    }

    #[test]
    fn path_count_scales_criterion_by_sqrt_k() {
        let level = ConfidenceLevel::default();
        let ci = ConfidenceInterval::from_stats(&stats_of(&[1.0, 1.2, 0.8, 1.1, 0.9]), &level);
        let r1 = ci.relative_scaled(1);
        let r4 = ci.relative_scaled(4);
        assert!((r1 / r4 - 2.0).abs() < 1e-12);
        // k = 0 (kernel not on the path) falls back to unscaled.
        assert_eq!(ci.relative_scaled(0), ci.relative());
    }

    #[test]
    fn t_critical_larger_than_z_for_small_n() {
        let level = ConfidenceLevel::new(0.95);
        assert!(level.critical(3) > level.critical(1000));
        assert!((level.critical(1000) - 1.959_964).abs() < 1e-3);
    }

    #[test]
    fn critical_cache_is_consistent() {
        let level = ConfidenceLevel::new(0.95);
        let a = level.critical(5);
        let b = level.critical(5);
        assert_eq!(a, b);
        assert!((a - 2.776).abs() < 2e-3);
    }

    #[test]
    fn nonpositive_mean_never_predictable() {
        let level = ConfidenceLevel::default();
        let ci = ConfidenceInterval::from_stats(&stats_of(&[-1.0, -1.0, -1.0]), &level);
        assert!(ci.relative().is_infinite());
    }

    #[test]
    fn paper_variance_estimator() {
        let xs = [2.0, 4.0, 6.0];
        let s = stats_of(&xs);
        // Σ(w̄-wᵢ)² = 8; k = 4 → 8 / 4^{1.5} = 1.0.
        assert!((path_variance(&s, 4) - 1.0).abs() < 1e-12);
        assert_eq!(path_variance(&s, 0), 0.0);
        assert_eq!(path_variance(&stats_of(&[1.0]), 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "open interval")]
    fn zero_level_is_rejected() {
        // Regression: `(0.0..1.0).contains(&0.0)` accepted level == 0.0, and
        // `normal_critical(0.0)` then yields a degenerate interval.
        let _ = ConfidenceLevel::new(0.0);
    }

    #[test]
    #[should_panic(expected = "open interval")]
    fn unit_level_is_rejected() {
        let _ = ConfidenceLevel::new(1.0);
    }

    #[test]
    fn boundary_adjacent_levels_are_accepted() {
        assert!(ConfidenceLevel::new(1e-9).level() > 0.0);
        assert!(ConfidenceLevel::new(1.0 - 1e-9).level() < 1.0);
    }

    #[test]
    fn critical_cache_is_race_free_under_contention() {
        // The cache must produce one consistent value per dof when hammered
        // from many threads at once (single-guard entry API, no TOCTOU).
        let level = std::sync::Arc::new(ConfidenceLevel::new(0.95));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let level = std::sync::Arc::clone(&level);
                std::thread::spawn(move || {
                    (2..32u64).map(|n| level.critical(n)).collect::<Vec<f64>>()
                })
            })
            .collect();
        let results: Vec<Vec<f64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for other in &results[1..] {
            assert_eq!(&results[0], other);
        }
    }

    #[test]
    fn endpoints_bracket_mean() {
        let level = ConfidenceLevel::default();
        let ci = ConfidenceInterval::from_stats(&stats_of(&[5.0, 6.0, 7.0, 5.5]), &level);
        assert!(ci.lo() < ci.mean && ci.mean < ci.hi());
    }
}

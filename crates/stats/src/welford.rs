//! Single-pass mean/variance accumulation (Welford's algorithm).
//!
//! The paper's framework requires "standard single-pass algorithms" to build
//! kernel performance models during execution (§III-A): each intercepted
//! kernel contributes one observation; no sample is ever stored. Welford's
//! update is numerically stable and its pairwise `merge` (Chan et al.) lets the
//! eager-propagation policy combine statistics gathered on different ranks.

/// Single-pass accumulator of count, mean, and variance.
///
/// # Examples
///
/// ```
/// use critter_stats::OnlineStats;
///
/// // One observation at a time, no samples stored (§III-A's requirement).
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
///
/// // Chan's merge combines accumulators as if their samples interleaved —
/// // what eager propagation does with statistics from different ranks.
/// let mut a = OnlineStats::from_slice(&[1.0, 2.0]);
/// a.merge(&OnlineStats::from_slice(&[3.0, 4.0]));
/// assert_eq!(a.count(), s.count());
/// assert_eq!(a.mean(), s.mean());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: f64,
    min: f64,
    max: f64,
    total: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            total: 0.0,
        }
    }

    /// Rebuild an accumulator from previously extracted raw parts, the
    /// inverse of reading `count`/`mean`/[`m2`](Self::m2)/`min`/`max`/`total`.
    /// Used by the profile snapshot layer to restore persisted kernel models
    /// bit-exactly; callers are responsible for passing a self-consistent
    /// tuple (the accessors of a live accumulator always are).
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64, total: f64) -> Self {
        if count == 0 {
            return Self::new();
        }
        OnlineStats { count, mean, m2, min, max, total }
    }

    /// Accumulator pre-loaded with one pass over `xs`.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.total += x;
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of all observations.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Welford's running sum of squared deviations (M2). Exposed so the
    /// accumulator can be persisted and rebuilt via
    /// [`from_parts`](Self::from_parts) without loss.
    #[inline]
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Smallest observation; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Unbiased sample variance (`n-1` denominator); `0.0` for fewer than two
    /// observations.
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// Population variance (`n` denominator).
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean, `s/√n`.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (Chan's parallel combination),
    /// as if all of `other`'s observations had been pushed here.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.total += other.total;
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        *self = OnlineStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_pass(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = if xs.len() < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
        };
        (mean, var)
    }

    #[test]
    fn matches_two_pass() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.5, 3.25];
        let s = OnlineStats::from_slice(&xs);
        let (m, v) = two_pass(&xs);
        assert!((s.mean() - m).abs() < 1e-12);
        assert!((s.variance() - v).abs() < 1e-12);
        assert_eq!(s.count(), 6);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 16.5);
    }

    #[test]
    fn empty_and_singleton() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s = s;
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn from_parts_round_trips_bit_exactly() {
        let s = OnlineStats::from_slice(&[1.0, 2.5, 9.0, 0.125]);
        let r = OnlineStats::from_parts(s.count(), s.mean(), s.m2(), s.min(), s.max(), s.total());
        assert_eq!(s, r);
        // The empty accumulator restores through from_parts regardless of the
        // sentinel values handed in (persisted form drops the ±∞ min/max).
        assert_eq!(OnlineStats::from_parts(0, 0.0, 0.0, 0.0, 0.0, 0.0), OnlineStats::new());
    }

    #[test]
    fn merge_matches_concatenation() {
        let a = [0.5, 1.5, 2.5];
        let b = [10.0, 20.0];
        let mut sa = OnlineStats::from_slice(&a);
        let sb = OnlineStats::from_slice(&b);
        sa.merge(&sb);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let sc = OnlineStats::from_slice(&all);
        assert_eq!(sa.count(), sc.count());
        assert!((sa.mean() - sc.mean()).abs() < 1e-12);
        assert!((sa.variance() - sc.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::from_slice(&[1.0, 2.0]);
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn numerical_stability_large_offset() {
        // Welford must survive a huge common offset where naive sum-of-squares
        // would catastrophically cancel.
        let xs: Vec<f64> = (0..1000).map(|i| 1.0e9 + (i % 7) as f64).collect();
        let s = OnlineStats::from_slice(&xs);
        let (_, v) = two_pass(&xs);
        assert!((s.variance() - v).abs() / v < 1e-7, "{} vs {}", s.variance(), v);
    }

    proptest! {
        #[test]
        fn prop_matches_two_pass(xs in proptest::collection::vec(-1e3f64..1e3, 2..200)) {
            let s = OnlineStats::from_slice(&xs);
            let (m, v) = two_pass(&xs);
            prop_assert!((s.mean() - m).abs() < 1e-9);
            prop_assert!((s.variance() - v).abs() < 1e-6 * (1.0 + v));
        }

        #[test]
        fn prop_merge_associative(
            a in proptest::collection::vec(0.0f64..1e3, 1..50),
            b in proptest::collection::vec(0.0f64..1e3, 1..50),
            c in proptest::collection::vec(0.0f64..1e3, 1..50),
        ) {
            let (sa, sb, sc) = (
                OnlineStats::from_slice(&a),
                OnlineStats::from_slice(&b),
                OnlineStats::from_slice(&c),
            );
            let mut left = sa; left.merge(&sb); left.merge(&sc);
            let mut bc = sb; bc.merge(&sc);
            let mut right = sa; right.merge(&bc);
            prop_assert_eq!(left.count(), right.count());
            prop_assert!((left.mean() - right.mean()).abs() < 1e-9);
            prop_assert!((left.variance() - right.variance()).abs() < 1e-6 * (1.0 + left.variance()));
        }

        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-1e6f64..1e6, 0..100)) {
            let s = OnlineStats::from_slice(&xs);
            prop_assert!(s.variance() >= 0.0);
            prop_assert!(s.variance_population() >= 0.0);
        }
    }
}

//! # critter-stats
//!
//! Statistical primitives behind the paper's approximate-autotuning framework
//! (§III-A): single-pass (Welford) mean/variance accumulation for kernel
//! execution times, normal and Student-t quantiles implemented from scratch
//! (no external special-function crates), confidence intervals — including the
//! paper's **path-scaled** variance, where knowing that a kernel appears `k`
//! times along the current sub-critical path shrinks the interval on the
//! *total* contributed time by `√k` — and summary helpers used by the
//! evaluation harness.

#![deny(missing_docs)]

pub mod confidence;
pub mod special;
pub mod summary;
pub mod welford;

pub use confidence::{ConfidenceInterval, ConfidenceLevel};
pub use welford::OnlineStats;

//! Summary helpers for the evaluation harness: relative errors, percentiles,
//! and geometric means used when reporting the paper's metrics (§VI-A:
//! per-configuration relative prediction error, mean relative error,
//! autotuning speedup).

/// Relative error `|predicted - reference| / reference`.
///
/// Returns `+∞` for a non-positive reference (an execution time of zero means
/// the measurement itself is broken; surfacing infinity is more honest than a
/// silent zero).
pub fn relative_error(predicted: f64, reference: f64) -> f64 {
    if reference <= 0.0 {
        f64::INFINITY
    } else {
        (predicted - reference).abs() / reference
    }
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean; `0.0` for an empty slice. Panics on negative input.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x >= 0.0, "geometric mean of a negative value");
            x.max(f64::MIN_POSITIVE).ln()
        })
        .sum();
    (s / xs.len() as f64).exp()
}

/// Linear-interpolation percentile `q ∈ [0, 1]` of an unsorted slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "percentile q must be in [0,1]");
    assert!(!xs.is_empty(), "percentile of an empty slice");
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(11.0, 10.0), 0.1);
        assert_eq!(relative_error(9.0, 10.0), 0.1);
        assert_eq!(relative_error(10.0, 10.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }

    #[test]
    fn mean_and_geomean() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert!((percentile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 0.5);
    }
}

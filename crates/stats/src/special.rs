//! Special functions needed for confidence intervals, implemented in-tree.
//!
//! We need two quantile functions: the standard normal (for large samples and
//! for the noise model's diagnostics) and Student's t (the paper constructs
//! 95% confidence intervals from small numbers of kernel samples, where t ≫ z).
//! The normal quantile uses Acklam's rational approximation (|ε| < 1.15e-9);
//! the t CDF is computed from the regularized incomplete beta function
//! (Numerical Recipes continued fraction) and inverted by bisection, which is
//! plenty fast for the handful of distinct `(level, dof)` pairs a tuning run
//! touches — and the hot pairs are cached by the caller.

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`, `x ∈ [0,1]`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "incomplete_beta requires positive a, b");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction in its region of fast convergence.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz's continued fraction for the incomplete beta (Numerical Recipes betacf).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3.0e-15;
    const FPMIN: f64 = 1.0e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
#[allow(clippy::excessive_precision)] // published coefficient table, kept verbatim
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g=7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// CDF of Student's t distribution with `dof` degrees of freedom.
pub fn student_t_cdf(t: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "degrees of freedom must be positive");
    let x = dof / (dof + t * t);
    let p = 0.5 * incomplete_beta(0.5 * dof, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided critical value `t*` with `P(|T| ≤ t*) = level` for Student's t.
///
/// `level` in (0, 1); `dof ≥ 1`. Solved by bisection on the CDF.
pub fn student_t_critical(level: f64, dof: f64) -> f64 {
    assert!((0.0..1.0).contains(&level), "level must be in (0,1)");
    assert!(dof >= 1.0, "dof must be at least 1");
    let target = 0.5 + level / 2.0; // upper-tail CDF value
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    while student_t_cdf(hi, dof) < target {
        hi *= 2.0;
        if hi > 1e12 {
            return hi; // dof=1 with extreme level — effectively unbounded
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, dof) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Standard normal quantile (inverse CDF), Acklam's rational approximation.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Two-sided standard-normal critical value `z*` with `P(|Z| ≤ z*) = level`.
pub fn normal_critical(level: f64) -> f64 {
    normal_quantile(0.5 + level / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        let (a, b, x) = (2.5, 1.5, 0.3);
        let lhs = incomplete_beta(a, b, x);
        let rhs = 1.0 - incomplete_beta(b, a, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-12);
        // I_x(1,1) = x (uniform).
        assert!((incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_symmetry_and_center() {
        assert!((student_t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
        let p = student_t_cdf(1.3, 4.0);
        let q = student_t_cdf(-1.3, 4.0);
        assert!((p + q - 1.0).abs() < 1e-12);
    }

    #[test]
    fn t_critical_matches_tables() {
        // Classic 95% two-sided values.
        let cases = [
            (1.0, 12.706),
            (2.0, 4.303),
            (4.0, 2.776),
            (9.0, 2.262),
            (29.0, 2.045),
            (100.0, 1.984),
        ];
        for (dof, expect) in cases {
            let got = student_t_critical(0.95, dof);
            assert!((got - expect).abs() < 2e-3, "dof {dof}: got {got}, want {expect}");
        }
    }

    #[test]
    fn t_converges_to_normal() {
        let t = student_t_critical(0.95, 1e6);
        let z = normal_critical(0.95);
        assert!((t - z).abs() < 1e-3, "t {t} z {z}");
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.8413447) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn normal_critical_95() {
        assert!((normal_critical(0.95) - 1.959_964).abs() < 1e-5);
        assert!((normal_critical(0.99) - 2.575_829).abs() < 1e-5);
    }

    #[test]
    fn quantile_is_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..100 {
            let q = normal_quantile(i as f64 / 100.0);
            assert!(q > prev);
            prev = q;
        }
    }
}

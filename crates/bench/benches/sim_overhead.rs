//! Host-side throughput of the simulator core: how fast simulated
//! communication and virtual-time accounting run. These bound how large a
//! tuning sweep the harness can afford.

use critter_bench::harness::{bench, black_box};
use critter_machine::{KernelClass, MachineModel};
use critter_sim::{run_simulation, ReduceOp, SimConfig};

fn bench_allreduce() {
    for &p in &[2usize, 4, 8] {
        bench("sim_allreduce_x100", &p.to_string(), 10, || {
            let machine = MachineModel::test_exact(p).shared();
            let r = run_simulation(SimConfig::new(p), machine, |ctx| {
                let world = ctx.world();
                for _ in 0..100 {
                    ctx.allreduce(&world, ReduceOp::Sum, &[1.0; 8]);
                }
                ctx.now()
            });
            black_box(r.elapsed());
        });
    }
}

fn bench_pingpong() {
    bench("sim_pingpong_x100", "p2", 10, || {
        let machine = MachineModel::test_exact(2).shared();
        let r = run_simulation(SimConfig::new(2), machine, |ctx| {
            let world = ctx.world();
            for i in 0..100u64 {
                if ctx.rank() == 0 {
                    ctx.send(&world, 1, i, &[1.0; 16]);
                    ctx.recv(&world, 1, i + 1000);
                } else {
                    let d = ctx.recv(&world, 0, i);
                    ctx.send(&world, 0, i + 1000, &d);
                }
            }
        });
        black_box(r.elapsed());
    });
}

fn bench_compute_accounting() {
    bench("sim_compute_x1000", "p4", 10, || {
        let machine = MachineModel::test_noisy(4, 1).shared();
        let r = run_simulation(SimConfig::new(4), machine, |ctx| {
            for _ in 0..1000 {
                ctx.compute(KernelClass::Gemm, 1e5);
            }
            ctx.now()
        });
        black_box(r.elapsed());
    });
}

fn main() {
    bench_allreduce();
    bench_pingpong();
    bench_compute_accounting();
}

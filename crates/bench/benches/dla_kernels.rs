//! Microbenchmarks of the sequential dense linear algebra kernels — the
//! host-side cost of the "real numerics" the simulated workloads execute.

use critter_bench::harness::{bench, black_box};
use critter_dla::{gemm, geqrf, potrf, tpqrt, trsm, Matrix, Side, Trans, Uplo};

fn bench_gemm() {
    for &n in &[16usize, 32, 64] {
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        let mut out = Matrix::zeros(n, n);
        bench("gemm", &n.to_string(), 20, || {
            gemm(Trans::No, Trans::No, 1.0, black_box(&a), black_box(&b), 0.0, &mut out);
        });
    }
}

fn bench_potrf() {
    for &n in &[16usize, 32, 64] {
        let a = Matrix::random_spd(n, 3);
        bench("potrf", &n.to_string(), 20, || {
            let mut l = a.clone();
            potrf(&mut l).unwrap();
            black_box(&l);
        });
    }
}

fn bench_geqrf() {
    for &(m, n) in &[(64usize, 8usize), (64, 16), (128, 16)] {
        let a = Matrix::random(m, n, 4);
        bench("geqrf", &format!("{m}x{n}"), 20, || {
            let mut f = a.clone();
            black_box(&geqrf(&mut f));
        });
    }
}

fn bench_tpqrt() {
    for &n in &[8usize, 16, 32] {
        let mut r0 = Matrix::random(n, n, 5);
        r0.triu_in_place();
        let b0 = Matrix::random(n, n, 6);
        bench("tpqrt", &n.to_string(), 20, || {
            let mut r = r0.clone();
            let mut b = b0.clone();
            black_box(&tpqrt(&mut r, &mut b));
        });
    }
}

fn bench_trsm() {
    for &n in &[16usize, 32, 64] {
        let mut l = Matrix::random_spd(n, 7);
        potrf(&mut l).unwrap();
        let b0 = Matrix::random(n, n, 8);
        bench("trsm", &n.to_string(), 20, || {
            let mut b = b0.clone();
            trsm(Side::Left, Uplo::Lower, Trans::No, false, 1.0, black_box(&l), &mut b);
            black_box(&b);
        });
    }
}

fn main() {
    bench_gemm();
    bench_potrf();
    bench_geqrf();
    bench_tpqrt();
    bench_trsm();
}

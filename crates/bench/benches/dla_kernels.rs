//! Microbenchmarks of the sequential dense linear algebra kernels — the
//! host-side cost of the "real numerics" the simulated workloads execute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use critter_dla::{gemm, geqrf, potrf, tpqrt, trsm, Matrix, Side, Trans, Uplo};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[16usize, 32, 64] {
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            let mut out = Matrix::zeros(n, n);
            bch.iter(|| {
                gemm(Trans::No, Trans::No, 1.0, black_box(&a), black_box(&b), 0.0, &mut out);
            });
        });
    }
    g.finish();
}

fn bench_potrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("potrf");
    for &n in &[16usize, 32, 64] {
        let a = Matrix::random_spd(n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let mut l = a.clone();
                potrf(&mut l).unwrap();
                black_box(l);
            });
        });
    }
    g.finish();
}

fn bench_geqrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("geqrf");
    for &(m, n) in &[(64usize, 8usize), (64, 16), (128, 16)] {
        let a = Matrix::random(m, n, 4);
        g.bench_with_input(BenchmarkId::new("mxn", format!("{m}x{n}")), &m, |bch, _| {
            bch.iter(|| {
                let mut f = a.clone();
                black_box(geqrf(&mut f));
            });
        });
    }
    g.finish();
}

fn bench_tpqrt(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpqrt");
    for &n in &[8usize, 16, 32] {
        let mut r0 = Matrix::random(n, n, 5);
        r0.triu_in_place();
        let b0 = Matrix::random(n, n, 6);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let mut r = r0.clone();
                let mut b = b0.clone();
                black_box(tpqrt(&mut r, &mut b));
            });
        });
    }
    g.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("trsm");
    for &n in &[16usize, 32, 64] {
        let mut l = Matrix::random_spd(n, 7);
        potrf(&mut l).unwrap();
        let b0 = Matrix::random(n, n, 8);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let mut b = b0.clone();
                trsm(Side::Left, Uplo::Lower, Trans::No, false, 1.0, black_box(&l), &mut b);
                black_box(b);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_potrf, bench_geqrf, bench_tpqrt, bench_trsm);
criterion_main!(benches);

//! Profiling overhead of the Critter interception layer: intercepted vs raw
//! simulated operations. The paper reports Critter's overhead is minimal even
//! for message-heavy QR schedules; this measures our implementation's
//! host-side cost per intercepted call.

use critter_bench::harness::{bench, black_box};
use critter_core::{ComputeOp, CritterConfig, CritterEnv, KernelStore};
use critter_machine::{KernelClass, MachineModel};
use critter_sim::{run_simulation, ReduceOp, SimConfig};

fn bench_raw_vs_intercepted_collectives() {
    bench("allreduce_x100_p4", "raw", 10, || {
        let machine = MachineModel::test_exact(4).shared();
        let r = run_simulation(SimConfig::new(4), machine, |ctx| {
            let world = ctx.world();
            for _ in 0..100 {
                ctx.allreduce(&world, ReduceOp::Sum, &[1.0; 32]);
            }
        });
        black_box(r.elapsed());
    });
    bench("allreduce_x100_p4", "intercepted", 10, || {
        let machine = MachineModel::test_exact(4).shared();
        let cfg = CritterConfig::full();
        let r = run_simulation(SimConfig::new(4), machine, move |ctx| {
            let mut env = CritterEnv::new(ctx, cfg.clone(), KernelStore::new());
            let world = env.world();
            for _ in 0..100 {
                env.allreduce(&world, ReduceOp::Sum, &[1.0; 32]);
            }
            let _ = env.finish();
        });
        black_box(r.elapsed());
    });
}

fn bench_raw_vs_intercepted_kernels() {
    bench("kernel_x1000_p1", "raw", 10, || {
        let machine = MachineModel::test_exact(1).shared();
        let r = run_simulation(SimConfig::new(1), machine, |ctx| {
            for _ in 0..1000 {
                ctx.compute(KernelClass::Gemm, 1e5);
            }
        });
        black_box(r.elapsed());
    });
    bench("kernel_x1000_p1", "intercepted", 10, || {
        let machine = MachineModel::test_exact(1).shared();
        let cfg = CritterConfig::full();
        let r = run_simulation(SimConfig::new(1), machine, move |ctx| {
            let mut env = CritterEnv::new(ctx, cfg.clone(), KernelStore::new());
            for _ in 0..1000 {
                env.kernel(ComputeOp::Gemm, 32, 32, 32, 1e5, || {});
            }
            let _ = env.finish();
        });
        black_box(r.elapsed());
    });
}

fn main() {
    bench_raw_vs_intercepted_collectives();
    bench_raw_vs_intercepted_kernels();
}

//! Hot-path micro-benchmarks feeding the perf trajectory (`BENCH_<n>.json`).
//!
//! The cases cover the paths critter-obs flamegraph folds show the tuner
//! actually spends host time on: per-invocation noise draws in the machine
//! model, the simulator's virtual-clock matching core (p2p and collectives),
//! the Critter interception layer with observability recording on,
//! `OnlineStats`/Welford updates along path propagation, and canonical-JSON
//! report serialization.
//!
//! Flags:
//!
//! * `--quick` — reduced sizes and iteration counts (CI smoke mode);
//! * `--emit FILE` — write the machine-fingerprinted trajectory JSON to
//!   `FILE` (compare runs with `bench-compare`).

use std::path::PathBuf;
use std::time::Instant;

use critter_autotune::{Autotuner, TuningOptions, TuningSpace};
use critter_bench::harness::{bench, black_box, summarize};
use critter_bench::trajectory::Trajectory;
use critter_core::{ComputeOp, CritterConfig, CritterEnv, ExecutionPolicy, KernelStore};
use critter_machine::{KernelClass, MachineModel};
use critter_sim::{run_simulation, BackendKind, ReduceOp, SimConfig};
use critter_stats::OnlineStats;

struct Opts {
    quick: bool,
    emit: Option<PathBuf>,
}

fn parse_args() -> Opts {
    let mut opts = Opts { quick: false, emit: None };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            // `cargo bench` appends `--bench` to the binary's arguments.
            "--bench" => {}
            "--quick" => opts.quick = true,
            "--emit" => {
                i += 1;
                opts.emit = Some(PathBuf::from(args.get(i).expect("--emit FILE")));
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    opts
}

fn main() {
    let opts = parse_args();
    let q = opts.quick;
    // (size divisor, iteration count) per mode: quick mode shrinks both so
    // the CI smoke job stays in seconds.
    let div = if q { 4 } else { 1 };
    let iters = if q { 4 } else { 12 };
    let mut traj = Trajectory::capture();

    // Per-invocation noise draws through the public sampling API: the cost
    // of one modeled compute time (base cost × node factor × jitter).
    {
        let m = MachineModel::test_noisy(4, 42);
        let n = 100_000 / div as u64;
        let t = bench("machine", "noise_draws", iters, || {
            let mut acc = 0.0;
            for i in 0..n {
                acc += m.compute_time(KernelClass::Gemm, 1e4, (i % 4) as usize, i);
            }
            black_box(acc);
        });
        traj.record("machine", "noise_draws", t);
    }

    // The production compute path: RankCtx::compute inside a running
    // simulation (noise sampling + clock + counters).
    {
        let n = 40_000 / div;
        let t = bench("sim", "compute_loop", iters, || {
            let m = MachineModel::test_noisy(1, 7).shared();
            let r = run_simulation(SimConfig::new(1), m, move |ctx| {
                for _ in 0..n {
                    ctx.compute(KernelClass::Gemm, 1e4);
                }
                ctx.now()
            });
            black_box(r.elapsed());
        });
        traj.record("sim", "compute_loop", t);
    }

    // Point-to-point matching: eager ping-pong through the p2p queues.
    {
        let n = 2_000 / div;
        let t = bench("sim", "p2p_pingpong", iters, || {
            let m = MachineModel::test_noisy(2, 11).shared();
            let r = run_simulation(SimConfig::new(2), m, move |ctx| {
                let world = ctx.world();
                for _ in 0..n {
                    if ctx.rank() == 0 {
                        ctx.send(&world, 1, 0, &[1.0; 8]);
                        ctx.recv(&world, 1, 1);
                    } else {
                        ctx.recv(&world, 0, 0);
                        ctx.send(&world, 0, 1, &[2.0; 8]);
                    }
                }
                ctx.now()
            });
            black_box(r.elapsed());
        });
        traj.record("sim", "p2p_pingpong", t);
    }

    // Collective matching: allreduce slots under rank-thread contention.
    {
        let n = 300 / div;
        let t = bench("sim", "allreduce", iters, || {
            let m = MachineModel::test_noisy(4, 13).shared();
            let r = run_simulation(SimConfig::new(4), m, move |ctx| {
                let world = ctx.world();
                let data = [1.5; 256];
                for _ in 0..n {
                    black_box(ctx.allreduce(&world, ReduceOp::Sum, &data));
                }
                ctx.now()
            });
            black_box(r.elapsed());
        });
        traj.record("sim", "allreduce", t);
    }

    // The Critter interception layer with observability recording on: every
    // kernel pays signature hashing, model updates, an obs event, and
    // metrics counters.
    {
        let n = 20_000 / div;
        let t = bench("core", "env_kernels_obs", iters, || {
            let m = MachineModel::test_noisy(1, 17).shared();
            let cfg = CritterConfig::new(ExecutionPolicy::ConditionalExecution, 0.25).with_obs();
            let r = run_simulation(SimConfig::new(1), m, move |ctx| {
                let mut env = CritterEnv::new(ctx, cfg.clone(), KernelStore::new());
                for i in 0..n {
                    let dim = 16 << (i % 4);
                    env.kernel(ComputeOp::Gemm, dim, dim, dim, (dim * dim * dim) as f64, || {});
                }
                let (rep, _store) = env.finish();
                black_box(rep.predicted_time);
            });
            black_box(r.elapsed());
        });
        traj.record("core", "env_kernels_obs", t);
    }

    // Welford accumulation: the per-sample path every kernel interception
    // takes when it records an observation.
    {
        let n = 1_000_000 / div as u64;
        let t = bench("stats", "welford_push", iters, || {
            let mut s = OnlineStats::new();
            for i in 0..n {
                s.push(1.0 + (i % 17) as f64 * 0.25);
            }
            black_box(s.variance());
        });
        traj.record("stats", "welford_push", t);
    }

    // Chan's pairwise merge: the eager-propagation combine of per-rank
    // accumulators.
    {
        let n = 200_000 / div as u64;
        let t = bench("stats", "welford_merge", iters, || {
            let part = OnlineStats::from_slice(&[1.0, 2.0, 4.0, 8.0]);
            let mut acc = OnlineStats::new();
            for _ in 0..n {
                acc.merge(&part);
            }
            black_box(acc.mean());
        });
        traj.record("stats", "welford_merge", t);
    }

    // The tasks backend at scale: one run with thousands of ranks — ring
    // exchanges plus world allreduces — timed once rather than through
    // `bench()` (its warm-up would repeat a run that costs tens of seconds
    // at full size; a single cold run is exactly what the nightly stress
    // budget tracks).
    {
        let p = if q { 1024 } else { 10_240 };
        let m = MachineModel::test_noisy(p, 23).shared();
        let cfg =
            SimConfig::new(p).with_backend(BackendKind::Tasks).with_stack_size((256 << 10) + 0xB1C);
        let start = Instant::now();
        let r = run_simulation(cfg, m, move |ctx| {
            let world = ctx.world();
            let right = (ctx.rank() + 1) % p;
            let left = (ctx.rank() + p - 1) % p;
            let mut acc = [ctx.rank() as f64, 0.0, 0.0, 0.0];
            for round in 0..3u64 {
                ctx.send(&world, right, round, &acc); // eager: completes locally
                let got = ctx.recv(&world, left, round);
                acc[1] += got[0];
                let sum = ctx.allreduce(&world, ReduceOp::Sum, &acc);
                acc[2] = sum[1];
            }
            ctx.now()
        });
        black_box(r.elapsed());
        let t = summarize(vec![start.elapsed()]);
        println!(
            "{:<44} min {:>10.3?}  median {:>10.3?}  ({} iters)",
            "sim/backend_tasks_10k", t.min, t.median, t.iters
        );
        traj.record("sim", "backend_tasks_10k", t);
    }

    // Profile-store batch commit: stage + CAS-link one generation per
    // publish into a fresh store. Disk-bound by design — this is the cost
    // a sweep pays once at session end, and what the concurrent-writer
    // retry loop amortizes.
    {
        let n = 48 / div as u64;
        let machine = critter_store::MachineSpec::from_models(
            &critter_machine::MachineParams::test_machine(),
            &critter_machine::NoiseParams::cluster(),
        );
        let mut round = 0u64;
        let base = std::env::temp_dir().join(format!("critter-bench-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let t = bench("store", "batch_commit", iters, || {
            round += 1;
            let dir = base.join(format!("commit-{round}"));
            let store = critter_store::Store::open(&dir).expect("open store");
            for c in 0..n {
                let mut s = KernelStore::new();
                let sig = critter_core::signature::KernelSig::compute(ComputeOp::Gemm, 8, 8, 8);
                s.record(&sig, 1.0e-3 + (round * 1009 + c) as f64 * 1.0e-9);
                black_box(store.publish(&machine, "bench", &[s]).expect("publish"));
            }
        });
        traj.record("store", "batch_commit", t);

        // Warm-start lookup + merge over an accumulated history: re-list
        // the index, load every matching blob, and fold the statistics
        // through the staleness policy — the read path every store-backed
        // sweep pays once at session start.
        let dir = base.join("lookup");
        let store = critter_store::Store::open(&dir).expect("open store");
        for c in 0..16u64 {
            let mut s = KernelStore::new();
            for i in 0..32u64 {
                let dim = (4 << (i % 4)) as usize;
                let sig =
                    critter_core::signature::KernelSig::compute(ComputeOp::Gemm, dim, dim, dim);
                s.record(&sig, 1.0e-3 + (c * 31 + i) as f64 * 1.0e-8);
            }
            store.publish(&machine, "bench", &[s]).expect("publish");
        }
        let staleness =
            critter_session::StalenessPolicy::fresh().with_decay(0.5).with_variance_inflation(2.0);
        let m = 32 / div as u64;
        let t = bench("store", "lookup_merge", iters, || {
            for _ in 0..m {
                let seeded = store
                    .warm_start(&machine, "bench", 1, &staleness)
                    .expect("warm start")
                    .expect("history exists");
                black_box(seeded.1);
            }
        });
        traj.record("store", "lookup_merge", t);
        let _ = std::fs::remove_dir_all(&base);
    }

    // Canonical-JSON serialization of a full tuning report (the committed
    // artifact form: sorted keys, pretty printing).
    {
        let opts_t =
            TuningOptions::new(ExecutionPolicy::OnlinePropagation, 0.25).with_test_machine();
        let report = Autotuner::new(opts_t).tune(&TuningSpace::SlateCholesky.smoke());
        let t = bench("json", "report_canonical", iters, || {
            black_box(report.to_json_string().len());
        });
        traj.record("json", "report_canonical", t);
    }

    if let Some(path) = &opts.emit {
        traj.write(path).expect("write trajectory");
        eprintln!("wrote {}", path.display());
    }
}

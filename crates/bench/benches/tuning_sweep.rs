//! End-to-end tuning-sweep cost, in host time (the simulated-time comparison
//! is what fig4/fig5 report), plus the serial-vs-parallel scheduler
//! comparison: the same sweeps run with the single-threaded schedule and
//! with pipelined reference runs / concurrent sweeps. Results are
//! bit-identical across schedules (asserted), so the speedup lines measure
//! pure scheduling gain. On a multi-core host the parallel schedule of the
//! 8-configuration sweep should come in at ≥2× — on a single core it
//! degenerates to ~1×, which the printed ratio makes visible.

use std::sync::Arc;

use critter_algs::slate_chol::SlateCholesky;
use critter_algs::Workload;
use critter_autotune::{Autotuner, TuningOptions, TuningSpace};
use critter_bench::harness::{bench, black_box, speedup};
use critter_bench::parallel_map;
use critter_core::ExecutionPolicy;
use critter_sim::BackendKind;

/// `--backend threads|tasks` selects the communicator backend every sweep in
/// this bench runs on (results are bit-identical; only host time changes).
fn backend_of_args() -> BackendKind {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--backend")
        .map(|i| {
            args.get(i + 1)
                .expect("--backend threads|tasks")
                .parse()
                .unwrap_or_else(|e| panic!("--backend threads|tasks: {e}"))
        })
        .unwrap_or_default()
}

fn bench_policies(backend: BackendKind) {
    let space = TuningSpace::SlateCholesky;
    let workloads = space.smoke();
    for policy in ExecutionPolicy::ALL_SELECTIVE {
        bench("smoke_sweep_slate_chol", policy.name(), 5, || {
            let mut opts =
                TuningOptions::new(policy, 0.25).with_test_machine().with_backend(backend);
            opts.reset_between_configs = space.resets_between_configs();
            let report = Autotuner::new(opts).tune(&workloads);
            black_box(report.speedup());
        });
    }
}

fn bench_epsilons(backend: BackendKind) {
    let workloads = TuningSpace::CandmcQr.smoke();
    for &eps in &[1.0, 0.125] {
        bench("smoke_sweep_candmc_eps", &eps.to_string(), 5, || {
            let opts = TuningOptions::new(ExecutionPolicy::OnlinePropagation, eps)
                .with_test_machine()
                .with_backend(backend);
            let report = Autotuner::new(opts).tune(&workloads);
            black_box(report.mean_error());
        });
    }
}

/// The same 8-configuration sweep on each backend: asserts the reports agree
/// bit for bit, then times both so the backend overhead delta is visible.
fn bench_backend_agreement() {
    let workloads = eight_config_space();
    let tune = |backend: BackendKind| {
        let opts = TuningOptions::new(ExecutionPolicy::OnlinePropagation, 1.0)
            .with_test_machine()
            .with_backend(backend);
        Autotuner::new(opts).tune(&workloads)
    };
    let reference = tune(BackendKind::Threads);
    for &backend in &BackendKind::ALL[1..] {
        assert_eq!(reference, tune(backend), "backends must agree bit for bit");
    }
    for backend in BackendKind::ALL {
        bench("tune_8cfg_backend", backend.name(), 5, || {
            black_box(tune(backend).speedup());
        });
    }
}

/// An 8-configuration tile-Cholesky space on 4 ranks: large enough that the
/// reference-run pipeline has work to overlap, small enough to iterate.
fn eight_config_space() -> Vec<Arc<dyn Workload>> {
    (0..8)
        .map(|v| {
            Arc::new(SlateCholesky { n: 64, tile: 8 + 8 * (v % 4), lookahead: v / 4, pr: 2, pc: 2 })
                as Arc<dyn Workload>
        })
        .collect()
}

/// One sweep, serial schedule vs pipelined reference runs. With
/// `--trace-out`/`--metrics-out`, the schedule-agreement check additionally
/// runs observed and exports the sweep's timeline artifacts.
fn bench_pipelined_tune() {
    let workloads = eight_config_space();
    let tune = |workers: usize| {
        let opts = TuningOptions::new(ExecutionPolicy::OnlinePropagation, 1.0)
            .with_test_machine()
            .with_workers(workers);
        Autotuner::new(opts).tune(&workloads)
    };
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = threads.max(2);
    assert_eq!(tune(1), tune(workers), "schedules must agree bit for bit");
    export_observed_sweep(&workloads, workers);
    let serial = bench("tune_8cfg_slate_chol", "workers=1", 5, || {
        black_box(tune(1).speedup());
    });
    let parallel = bench("tune_8cfg_slate_chol", &format!("workers={workers}"), 5, || {
        black_box(tune(workers).speedup());
    });
    println!(
        "tune_8cfg_slate_chol pipeline speedup: {:.2}x on {threads} core(s)",
        speedup(serial, parallel)
    );
}

/// Eight independent (policy, ε) sweeps, run back to back vs fanned out.
fn bench_sweep_level_parallelism() {
    let workloads = eight_config_space();
    let specs: Vec<(ExecutionPolicy, f64)> = ExecutionPolicy::ALL_SELECTIVE
        .iter()
        .flat_map(|&p| [(p, 1.0), (p, 0.25)])
        .take(8)
        .collect();
    let run_all = |jobs: usize| {
        parallel_map(&specs, jobs, |&(policy, eps)| {
            let opts = TuningOptions::new(policy, eps).with_test_machine();
            Autotuner::new(opts).tune(&workloads)
        })
    };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let jobs = cores.clamp(2, 8);
    assert_eq!(run_all(1), run_all(jobs), "sweep fan-out must not change results");
    let serial = bench("sweep8_slate_chol", "jobs=1", 3, || {
        black_box(run_all(1).len());
    });
    let parallel = bench("sweep8_slate_chol", &format!("jobs={jobs}"), 3, || {
        black_box(run_all(jobs).len());
    });
    println!(
        "sweep8_slate_chol sweep-level speedup: {:.2}x on {cores} core(s)",
        speedup(serial, parallel)
    );
}

/// Honor `--trace-out FILE` / `--metrics-out FILE` (as in the figure
/// binaries): rerun the 8-configuration sweep observed, serial and pipelined,
/// assert the timelines agree byte for byte, and write the artifacts.
fn export_observed_sweep(workloads: &[Arc<dyn Workload>], workers: usize) {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{name} FILE")).clone())
    };
    let (trace_out, metrics_out) = (flag("--trace-out"), flag("--metrics-out"));
    if trace_out.is_none() && metrics_out.is_none() {
        return;
    }
    let tune = |workers: usize| {
        let opts = TuningOptions::new(ExecutionPolicy::OnlinePropagation, 1.0)
            .with_test_machine()
            .with_workers(workers)
            .with_observe();
        Autotuner::new(opts).tune(workloads)
    };
    let obs = tune(workers).obs.expect("observed sweep");
    let chrome = obs.timeline.to_chrome_string();
    let serial = tune(1).obs.expect("observed sweep");
    assert_eq!(
        chrome,
        serial.timeline.to_chrome_string(),
        "observed timelines must agree byte for byte across schedules"
    );
    if let Some(path) = trace_out {
        std::fs::write(&path, chrome).expect("write trace");
        eprintln!("wrote {path}");
    }
    if let Some(path) = metrics_out {
        std::fs::write(&path, obs.metrics_string()).expect("write metrics");
        eprintln!("wrote {path}");
    }
}

fn main() {
    let backend = backend_of_args();
    bench_policies(backend);
    bench_epsilons(backend);
    bench_pipelined_tune();
    bench_sweep_level_parallelism();
    bench_backend_agreement();
}

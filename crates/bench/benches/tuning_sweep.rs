//! End-to-end tuning-sweep cost per policy on a smoke-sized space: the
//! headline "how much does autotuning cost under each policy" comparison, in
//! host time (the simulated-time comparison is what fig4/fig5 report).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use critter_autotune::{Autotuner, TuningOptions, TuningSpace};
use critter_core::ExecutionPolicy;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("smoke_sweep_slate_chol");
    g.sample_size(10);
    let space = TuningSpace::SlateCholesky;
    let workloads = space.smoke();
    for policy in ExecutionPolicy::ALL_SELECTIVE {
        g.bench_with_input(BenchmarkId::from_parameter(policy.name()), &policy, |bch, &p| {
            bch.iter(|| {
                let mut opts = TuningOptions::new(p, 0.25).test_machine();
                opts.reset_between_configs = space.resets_between_configs();
                let report = Autotuner::new(opts).tune(&workloads);
                black_box(report.speedup());
            });
        });
    }
    g.finish();
}

fn bench_epsilons(c: &mut Criterion) {
    let mut g = c.benchmark_group("smoke_sweep_candmc_eps");
    g.sample_size(10);
    let workloads = TuningSpace::CandmcQr.smoke();
    for &eps in &[1.0, 0.125] {
        g.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |bch, &e| {
            bch.iter(|| {
                let opts =
                    TuningOptions::new(ExecutionPolicy::OnlinePropagation, e).test_machine();
                let report = Autotuner::new(opts).tune(&workloads);
                black_box(report.mean_error());
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies, bench_epsilons);
criterion_main!(benches);

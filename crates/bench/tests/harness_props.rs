//! Tests of the bench harness's own measurement machinery: the sample
//! summarizer must report correct order statistics on known inputs, and
//! `parallel_map` must preserve input order and run every item exactly once
//! at any job count — the figure binaries rely on both when they fan sweeps
//! out over a thread pool and zip results back against the spec list.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use critter_bench::harness::{speedup, summarize, time, Timing};
use critter_bench::parallel_map;
use proptest::prelude::*;

#[test]
fn summarize_reports_min_median_and_count_on_known_samples() {
    let ms = |n: u64| Duration::from_millis(n);
    // Odd count: median is the middle element.
    let t = summarize(vec![ms(5), ms(1), ms(9)]);
    assert_eq!(t.min, ms(1));
    assert_eq!(t.median, ms(5));
    assert_eq!(t.iters, 3);
    // Even count: midpoint of the two middle samples, not the upper median —
    // the interpolated value is stable when adjacent-ranked samples swap
    // order across runs.
    let t = summarize(vec![ms(4), ms(2), ms(8), ms(6)]);
    assert_eq!(t.min, ms(2));
    assert_eq!(t.median, ms(5));
    assert_eq!(t.iters, 4);
    // Two samples: midpoint again (regression test for the even-count case).
    let t = summarize(vec![ms(10), ms(20)]);
    assert_eq!(t.median, ms(15));
    // A single sample is its own min and median.
    let t = summarize(vec![ms(7)]);
    assert_eq!((t.min, t.median, t.iters), (ms(7), ms(7), 1));
}

#[test]
fn speedup_is_ratio_of_minima() {
    let t = |min_us: u64| Timing {
        min: Duration::from_micros(min_us),
        median: Duration::from_micros(min_us * 2),
        iters: 3,
    };
    let s = speedup(t(800), t(200));
    assert!((s - 4.0).abs() < 1e-9, "expected 4x, got {s}");
}

#[test]
fn time_runs_warmup_plus_iters() {
    let calls = AtomicUsize::new(0);
    let t = time(
        || {
            calls.fetch_add(1, Ordering::Relaxed);
        },
        5,
    );
    assert_eq!(t.iters, 5);
    // Adaptive warm-up: at least two runs (consecutive agreement needs a
    // pair), at most the cap of eight, plus the five timed iterations.
    let calls = calls.load(Ordering::Relaxed);
    assert!((7..=13).contains(&calls), "expected 5 timed + 2..=8 warm-up calls, got {calls}");
}

#[test]
fn cold_closure_does_not_pollute_min() {
    // A deliberately cold case: the first two calls are slow (and differ by
    // far more than the warm-up tolerance, so a single warm-up pair cannot
    // spuriously converge on them), every later call is fast. The adaptive
    // warm-up must absorb the whole cold phase before timing starts.
    let spin = |d: Duration| {
        let start = std::time::Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    };
    let calls = AtomicUsize::new(0);
    let t = time(
        || {
            match calls.fetch_add(1, Ordering::Relaxed) {
                0 => spin(Duration::from_millis(40)),
                1 => spin(Duration::from_millis(10)),
                _ => {}
            };
        },
        3,
    );
    assert!(
        t.min < Duration::from_millis(5),
        "cold-start runs leaked into the timed samples: min {:?}",
        t.min
    );
    assert!(t.median < Duration::from_millis(5), "median polluted: {:?}", t.median);
}

proptest! {
    /// Order preservation and exactly-once execution at any job count,
    /// including jobs > items and the serial fast path.
    #[test]
    fn parallel_map_matches_serial_map(len in 0usize..65, jobs in 1usize..9) {
        let items: Vec<usize> = (0..len).collect();
        let calls = AtomicUsize::new(0);
        let mapped = parallel_map(&items, jobs, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x.wrapping_mul(31) ^ 7
        });
        let expected: Vec<usize> = items.iter().map(|&x| x.wrapping_mul(31) ^ 7).collect();
        prop_assert_eq!(mapped, expected);
        prop_assert_eq!(calls.load(Ordering::Relaxed), len);
    }

    /// `summarize` against a reference computation on arbitrary samples.
    #[test]
    fn summarize_matches_reference_order_statistics(raw in collection::vec(0u64..10_000, 1..50)) {
        let samples: Vec<Duration> = raw.iter().map(|&n| Duration::from_nanos(n)).collect();
        let t = summarize(samples.clone());
        let mut sorted = samples;
        sorted.sort_unstable();
        prop_assert_eq!(t.min, sorted[0]);
        let n = sorted.len();
        let reference = if n.is_multiple_of(2) {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2
        } else {
            sorted[n / 2]
        };
        prop_assert_eq!(t.median, reference);
        prop_assert_eq!(t.iters, n);
    }
}

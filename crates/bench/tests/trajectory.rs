//! Trajectory-file contract tests: the `BENCH_<n>.json` schema round-trips,
//! the machine fingerprint is stable within a process, and the
//! tolerance-aware comparison produces the documented verdicts.

use std::time::Duration;

use critter_bench::harness::Timing;
use critter_bench::trajectory::{
    compare, render_comparison, Fingerprint, Trajectory, Verdict, TRAJECTORY_SCHEMA_VERSION,
};

fn timing(min_ns: u64, median_ns: u64, iters: usize) -> Timing {
    Timing { min: Duration::from_nanos(min_ns), median: Duration::from_nanos(median_ns), iters }
}

fn sample() -> Trajectory {
    let mut t = Trajectory::capture();
    t.record("sim", "compute_loop", timing(4_700_000, 4_950_000, 20));
    t.record("sim", "allreduce", timing(3_000_000, 3_100_000, 20));
    t.record("json", "report_canonical", timing(78_000, 80_000, 50));
    t
}

#[test]
fn schema_round_trips_bit_exactly() {
    let t = sample();
    let back = Trajectory::from_json(&t.to_json()).unwrap();
    assert_eq!(back, t);
    assert_eq!(back.to_json_string(), t.to_json_string());

    // The committed form is canonical: serializing twice is byte-identical,
    // carries the schema version, and ends with a newline.
    let s = t.to_json_string();
    assert_eq!(s, back.to_json_string());
    assert!(s.contains("\"schema_version\": 1"));
    assert!(s.ends_with('\n'));
}

#[test]
fn unknown_schema_versions_are_rejected() {
    let mut v = sample().to_json();
    if let Some(m) = v.as_object_mut() {
        m.insert("schema_version".into(), serde_json::json!(TRAJECTORY_SCHEMA_VERSION + 1));
    }
    let err = Trajectory::from_json(&v).unwrap_err();
    assert!(err.contains("schema version"), "unhelpful error: {err}");
}

#[test]
fn truncated_file_errors_name_the_key() {
    let mut v = sample().to_json();
    v.as_object_mut().unwrap().remove("fingerprint");
    let err = Trajectory::from_json(&v).unwrap_err();
    assert!(err.contains("`fingerprint`"), "unhelpful error: {err}");

    let mut v = sample().to_json();
    let case0 = &mut v.get_mut("cases").unwrap().as_array_mut().unwrap()[0];
    case0.as_object_mut().unwrap().remove("min_ns");
    let err = Trajectory::from_json(&v).unwrap_err();
    assert!(err.contains("`cases[0].min_ns`"), "unhelpful error: {err}");
}

#[test]
fn fingerprint_is_stable_within_a_process() {
    let a = Fingerprint::detect();
    let b = Fingerprint::detect();
    assert_eq!(a, b);
    assert!(!a.os.is_empty());
    assert!(!a.arch.is_empty());
    assert!(a.cpus >= 1);
}

#[test]
fn write_read_round_trip() {
    let dir = std::env::temp_dir().join("critter-bench-trajectory-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_test.json");
    let t = sample();
    t.write(&path).unwrap();
    let back = Trajectory::read(&path).unwrap();
    assert_eq!(back, t);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn compare_verdicts_respect_tolerance() {
    let mut old = Trajectory::capture();
    old.record("g", "two_x_faster", timing(1_000, 1_100, 10));
    old.record("g", "within_noise", timing(1_000, 1_100, 10));
    old.record("g", "regressed", timing(1_000, 1_100, 10));
    old.record("g", "dropped", timing(1_000, 1_100, 10));

    let mut new = Trajectory::capture();
    new.record("g", "two_x_faster", timing(500, 520, 10));
    new.record("g", "within_noise", timing(1_030, 1_090, 10)); // 3% drift < 5% tolerance
    new.record("g", "regressed", timing(1_500, 1_600, 10));
    new.record("g", "brand_new", timing(42, 42, 10));

    let deltas = compare(&old, &new, 0.05);
    let verdict = |case: &str| deltas.iter().find(|d| d.case == case).unwrap().verdict;
    assert_eq!(verdict("two_x_faster"), Verdict::Faster);
    assert_eq!(verdict("within_noise"), Verdict::Unchanged);
    assert_eq!(verdict("regressed"), Verdict::Slower);
    assert_eq!(verdict("brand_new"), Verdict::Added);
    assert_eq!(verdict("dropped"), Verdict::Removed);

    let speedup = deltas.iter().find(|d| d.case == "two_x_faster").unwrap().speedup.unwrap();
    assert!((speedup - 2.0).abs() < 1e-9);

    // A wider tolerance absorbs the regression.
    let loose = compare(&old, &new, 0.60);
    let verdict = |case: &str| loose.iter().find(|d| d.case == case).unwrap().verdict;
    assert_eq!(verdict("regressed"), Verdict::Unchanged);
    assert_eq!(verdict("two_x_faster"), Verdict::Faster); // 2x clears even 60%

    let table = render_comparison(&deltas, 0.05);
    assert!(table.contains("g/two_x_faster"));
    assert!(table.contains("1 faster, 1 slower"));
}

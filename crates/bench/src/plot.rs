//! Terminal scatter/line plots for the figure harness: renders the paper's
//! panel curves (autotuning time vs ε per policy, error vs ε, BSP trade-off
//! clouds) directly from the CSVs in `results/`, so the reproduced figures
//! can be eyeballed without leaving the terminal.

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in any order.
    pub points: Vec<(f64, f64)>,
}

/// Plot options.
#[derive(Debug, Clone)]
pub struct PlotOpts {
    /// Plot width in character cells.
    pub width: usize,
    /// Plot height in character cells.
    pub height: usize,
    /// Log-scale the x axis.
    pub log_x: bool,
    /// Log-scale the y axis.
    pub log_y: bool,
}

impl Default for PlotOpts {
    fn default() -> Self {
        PlotOpts { width: 72, height: 20, log_x: false, log_y: false }
    }
}

const MARKS: &[char] = &['o', 'x', '+', '*', '#', '@', '%', '&'];

fn transform(v: f64, log: bool) -> f64 {
    if log {
        v.max(1e-300).log10()
    } else {
        v
    }
}

/// Render `series` as an ASCII scatter plot with axes and a legend.
pub fn render(title: &str, series: &[Series], opts: &PlotOpts) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- {title} --");
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter())
        .map(|&(x, y)| (transform(x, opts.log_x), transform(y, opts.log_y)))
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if pts.is_empty() {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    // Degenerate ranges still deserve a visible line.
    if x1 - x0 < 1e-12 {
        x1 = x0 + 1.0;
    }
    if y1 - y0 < 1e-12 {
        y1 = y0 + 1.0;
    }
    let (w, h) = (opts.width.max(16), opts.height.max(6));
    let mut grid = vec![vec![' '; w]; h];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            let (tx, ty) = (transform(x, opts.log_x), transform(y, opts.log_y));
            if !tx.is_finite() || !ty.is_finite() {
                continue;
            }
            let cx = ((tx - x0) / (x1 - x0) * (w - 1) as f64).round() as usize;
            let cy = ((ty - y0) / (y1 - y0) * (h - 1) as f64).round() as usize;
            let row = h - 1 - cy.min(h - 1);
            grid[row][cx.min(w - 1)] = mark;
        }
    }
    let fmt_axis = |v: f64, log: bool| -> String {
        let raw = if log { 10f64.powf(v) } else { v };
        if raw == 0.0 {
            "0".into()
        } else if raw.abs() >= 1e4 || raw.abs() < 1e-2 {
            format!("{raw:.2e}")
        } else {
            format!("{raw:.3}")
        }
    };
    let _ = writeln!(out, "{:>10} +{}", fmt_axis(y1, opts.log_y), "-".repeat(w));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == h - 1 { fmt_axis(y0, opts.log_y) } else { String::new() };
        let _ = writeln!(out, "{label:>10} |{}", row.iter().collect::<String>());
    }
    let x0_label = fmt_axis(x0, opts.log_x);
    let x1_label =
        format!("{:>w$}", fmt_axis(x1, opts.log_x), w = w.saturating_sub(x0_label.len()));
    let _ = writeln!(out, "{:>10}  {x0_label}{x1_label}", "");
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "{:>12} {}", MARKS[si % MARKS.len()], s.label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<Series> {
        vec![
            Series { label: "a".into(), points: vec![(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)] },
            Series { label: "b".into(), points: vec![(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)] },
        ]
    }

    #[test]
    fn renders_marks_and_legend() {
        let s = render("demo", &series(), &PlotOpts::default());
        assert!(s.contains("demo"));
        assert!(s.contains('o') && s.contains('x'));
        assert!(s.contains(" a") && s.contains(" b"));
    }

    #[test]
    fn log_axes_do_not_panic_on_small_values() {
        let s =
            vec![Series { label: "tiny".into(), points: vec![(1.0 / 256.0, 1e-6), (1.0, 1e-2)] }];
        let out = render("log", &s, &PlotOpts { log_x: true, log_y: true, ..Default::default() });
        assert!(out.contains("log"));
    }

    #[test]
    fn empty_series_is_graceful() {
        let out = render("none", &[], &PlotOpts::default());
        assert!(out.contains("(no data)"));
    }

    #[test]
    fn degenerate_range_is_handled() {
        let s = vec![Series { label: "flat".into(), points: vec![(1.0, 5.0), (1.0, 5.0)] }];
        let out = render("flat", &s, &PlotOpts::default());
        assert!(out.contains('o'));
    }
}

//! Figure 4 (panels a–h): Cholesky autotuning evaluation.
//!
//! * 4a/4b — autotuning execution time vs ε for the five policies, with the
//!   full-execution reference (Capital / SLATE Cholesky);
//! * 4c — max-over-ranks kernel execution time vs ε (SLATE Cholesky);
//! * 4d — mean prediction error of critical-path computation time (SLATE);
//! * 4e/4f — mean execution-time prediction error vs ε (Capital / SLATE);
//! * 4g/4h — per-configuration error under online propagation.

use critter_autotune::TuningSpace;
use critter_bench::{run_figure, FigOpts};

fn main() {
    let opts = FigOpts::from_args();
    run_figure(&opts, TuningSpace::CapitalCholesky, TuningSpace::SlateCholesky, "fig4");
}

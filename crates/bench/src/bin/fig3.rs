//! Figure 3 entry point; the implementation lives in `critter_bench::fig3`
//! so the testkit's trace-determinism oracle can drive the same pipeline.

use critter_bench::{fig3, FigOpts};

fn main() {
    fig3::run(&FigOpts::from_args());
}

//! Ablation studies for the design choices DESIGN.md §4 calls out:
//!
//! * `noise` — how policy speedup and prediction error respond to machine
//!   noise amplitude (0×, 1×, 2×, 4× the calibrated cluster level);
//! * `overhead` — charging vs not charging Critter's internal piggyback
//!   messages (the paper's "profiling overhead is minimal" claim);
//! * `granularity` — exact message-size signatures vs log2 buckets;
//! * `count-scaling` — conditional execution (no critical-path count
//!   scaling) vs online propagation (√k-scaled intervals) convergence.
//!
//! Run all: `cargo run -p critter-bench --bin ablate --release`. Each
//! ablation's tuning sweeps are independent and deterministic, so they fan
//! out over `--jobs` threads; rows are emitted in the serial order.
//!
//! With `--trace-out`/`--folded-out`/`--metrics-out`, every tuning sweep is
//! observed and the per-ablation timelines are stitched (in the fixed serial
//! order, never the dispatch order) into one combined artifact.

use critter_algs::slate_chol::SlateCholesky;
use critter_algs::Workload;
use critter_autotune::{Autotuner, TuningOptions, TuningSpace};
use critter_bench::{emit_obs, f, parallel_map, FigOpts, Table};
use critter_core::signature::SizeGranularity;
use critter_core::ExecutionPolicy;
use critter_core::{CritterConfig, CritterEnv, KernelStore};
use critter_machine::{MachineModel, NoiseParams};
use critter_obs::ObsReport;
use critter_sim::{run_simulation, SimConfig};

fn main() {
    let opts = FigOpts::from_args();
    let mut obs = opts.observe().then(ObsReport::new);
    noise_ablation(&opts, &mut obs);
    overhead_ablation(&opts, &mut obs);
    granularity_ablation(&opts, &mut obs);
    count_scaling_ablation(&opts, &mut obs);
    p2p_semantics_ablation(&opts);
    extrapolation_ablation(&opts, &mut obs);
    if let Some(obs) = &obs {
        emit_obs(&opts, obs);
    }
}

fn base(opts: &FigOpts, policy: ExecutionPolicy, eps: f64, space: TuningSpace) -> TuningOptions {
    let mut o = TuningOptions::new(policy, eps).with_backend(opts.backend);
    o.reset_between_configs = space.resets_between_configs();
    o
}

/// Fold each sweep's timeline into the combined ablation report, prefixing
/// run labels with the ablation variant. Reports arrive in the serial spec
/// order (`parallel_map` preserves input order), keeping the combined
/// artifact schedule-independent.
fn absorb_obs(
    obs: &mut Option<ObsReport>,
    reports: Vec<critter_autotune::TuningReport>,
    prefixes: impl IntoIterator<Item = String>,
) {
    if let Some(combined) = obs {
        for (report, prefix) in reports.into_iter().zip(prefixes) {
            if let Some(o) = report.obs {
                combined.absorb(o, &prefix);
            }
        }
    }
}

/// Split the job budget between `n` concurrent sweeps and each sweep's
/// internal reference-run pipeline.
fn pipeline_workers(jobs: usize, n: usize) -> usize {
    1 + jobs / n.max(1)
}

/// Speedup/error vs noise amplitude: selective execution should skip less (and
/// err more) on noisier machines for a fixed ε.
fn noise_ablation(opts: &FigOpts, obs: &mut Option<ObsReport>) {
    let space = TuningSpace::SlateCholesky;
    let ws = space.bench();
    let mut t = Table::new("ablate-noise", &["noise_scale", "speedup", "mean_err", "skip_frac"]);
    let scales = [0.0, 0.5, 1.0, 2.0, 4.0];
    let reports = parallel_map(&scales, opts.jobs, |&scale| {
        let mut o = base(opts, ExecutionPolicy::OnlinePropagation, 0.25, space);
        o.noise = NoiseParams::cluster().scaled(scale);
        o.workers = pipeline_workers(opts.jobs, scales.len());
        o.observe = opts.observe();
        Autotuner::new(o).tune(&ws)
    });
    for (&scale, r) in scales.iter().zip(&reports) {
        t.row(vec![f(scale), f(r.speedup()), f(r.mean_error()), f(r.skip_fraction())]);
    }
    t.emit(&opts.out_dir);
    absorb_obs(obs, reports, scales.iter().map(|&s| format!("noise/{s}")));
}

/// Charged vs free internal messages: the gap is Critter's modeled overhead.
fn overhead_ablation(opts: &FigOpts, obs: &mut Option<ObsReport>) {
    let mut t =
        Table::new("ablate-overhead", &["space", "charged", "tuning_time", "full_time", "speedup"]);
    let specs: Vec<(TuningSpace, bool)> = [TuningSpace::CapitalCholesky, TuningSpace::CandmcQr]
        .into_iter()
        .flat_map(|space| [(space, true), (space, false)])
        .collect();
    let reports = parallel_map(&specs, opts.jobs, |&(space, charged)| {
        let mut o = base(opts, ExecutionPolicy::ConditionalExecution, 0.25, space);
        o.charge_internal = charged;
        o.workers = pipeline_workers(opts.jobs, specs.len());
        o.observe = opts.observe();
        Autotuner::new(o).tune(&space.bench())
    });
    for (&(space, charged), r) in specs.iter().zip(&reports) {
        t.row(vec![
            space.name().into(),
            charged.to_string(),
            f(r.tuning_time()),
            f(r.full_time()),
            f(r.speedup()),
        ]);
    }
    t.emit(&opts.out_dir);
    absorb_obs(
        obs,
        reports,
        specs.iter().map(|&(space, charged)| format!("overhead/{}/{charged}", space.name())),
    );
}

/// Exact vs log2-bucketed communication signatures: coarser pooling converges
/// faster but mixes distinct message behaviors (more error).
fn granularity_ablation(opts: &FigOpts, obs: &mut Option<ObsReport>) {
    let space = TuningSpace::CandmcQr;
    let ws = space.bench();
    let mut t = Table::new(
        "ablate-granularity",
        &["granularity", "speedup", "mean_err", "skip_frac", "distinct_sig_proxy"],
    );
    let specs = [(SizeGranularity::Exact, "exact"), (SizeGranularity::Log2, "log2")];
    let reports = parallel_map(&specs, opts.jobs, |&(gran, _)| {
        let mut o = base(opts, ExecutionPolicy::OnlinePropagation, 0.25, space);
        o.granularity = gran;
        o.workers = pipeline_workers(opts.jobs, specs.len());
        o.observe = opts.observe();
        Autotuner::new(o).tune(&ws)
    });
    for (&(_, label), r) in specs.iter().zip(&reports) {
        let execs: u64 = r
            .configs
            .iter()
            .map(|c| c.pairs.iter().map(|(_, t)| t.kernels_executed).sum::<u64>())
            .sum();
        t.row(vec![
            label.into(),
            f(r.speedup()),
            f(r.mean_error()),
            f(r.skip_fraction()),
            execs.to_string(),
        ]);
    }
    t.emit(&opts.out_dir);
    absorb_obs(obs, reports, specs.iter().map(|&(_, label)| format!("granularity/{label}")));
}

/// Conditional (k = 1) vs online (√k scaling): the paper's §III-A claim that
/// path counts cut the samples needed for a fixed tolerance.
fn count_scaling_ablation(opts: &FigOpts, obs: &mut Option<ObsReport>) {
    let space = TuningSpace::SlateCholesky;
    let ws = space.bench();
    let mut t = Table::new(
        "ablate-count-scaling",
        &["policy", "epsilon", "kernels_executed", "skip_frac", "mean_err"],
    );
    let specs: Vec<(f64, ExecutionPolicy)> = [0.5, 0.125, 0.03125]
        .into_iter()
        .flat_map(|eps| {
            [ExecutionPolicy::ConditionalExecution, ExecutionPolicy::OnlinePropagation]
                .map(|p| (eps, p))
        })
        .collect();
    let reports = parallel_map(&specs, opts.jobs, |&(eps, policy)| {
        let mut o = base(opts, policy, eps, space);
        o.workers = pipeline_workers(opts.jobs, specs.len());
        o.observe = opts.observe();
        Autotuner::new(o).tune(&ws)
    });
    for (&(eps, policy), r) in specs.iter().zip(&reports) {
        let execs: u64 = r
            .configs
            .iter()
            .map(|c| c.pairs.iter().map(|(_, t)| t.kernels_executed).sum::<u64>())
            .sum();
        t.row(vec![
            policy.name().into(),
            f(eps),
            execs.to_string(),
            f(r.skip_fraction()),
            f(r.mean_error()),
        ]);
    }
    t.emit(&opts.out_dir);
    absorb_obs(
        obs,
        reports,
        specs.iter().map(|&(eps, policy)| format!("count-scaling/{}/{eps}", policy.name())),
    );
}

/// Eager vs rendezvous point-to-point time semantics (DESIGN.md §4.1): run
/// one tile-Cholesky configuration with the eager threshold forced to zero
/// (all rendezvous), the default 512 words, and effectively infinite (all
/// eager), and compare the simulated makespans. Rendezvous couples sender
/// clocks to receivers, lengthening the panel chain.
fn p2p_semantics_ablation(opts: &FigOpts) {
    let w = SlateCholesky { n: 384, tile: 48, lookahead: 1, pr: 4, pc: 4 };
    let mut t = Table::new("ablate-p2p-semantics", &["eager_threshold_words", "makespan"]);
    let specs = [("0 (rendezvous)", 0usize), ("512 (default)", 512), ("inf (eager)", usize::MAX)];
    let elapsed = parallel_map(&specs, opts.jobs, |&(_, thresh)| {
        let machine = MachineModel::stampede2(w.ranks(), 99, 0).shared();
        let wl = w.clone();
        let report = run_simulation(
            SimConfig::new(w.ranks()).with_eager_words(thresh).with_backend(opts.backend),
            machine,
            move |ctx| {
                let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
                wl.run(&mut env, false);
                let _ = env.finish();
            },
        );
        report.elapsed()
    });
    for (&(label, _), &makespan) in specs.iter().zip(&elapsed) {
        t.row(vec![label.into(), f(makespan)]);
    }
    t.emit(&opts.out_dir);
}

/// The §VIII extension on the workload the paper names as its beneficiary:
/// CANDMC QR's gradually shrinking trailing matrix yields many under-sampled
/// signatures; per-family line fits let them be skipped.
fn extrapolation_ablation(opts: &FigOpts, obs: &mut Option<ObsReport>) {
    let space = TuningSpace::CandmcQr;
    let ws = space.bench();
    let mut t = Table::new(
        "ablate-extrapolation",
        &["extrapolate", "epsilon", "speedup", "skip_frac", "mean_err"],
    );
    let specs: Vec<(f64, bool)> =
        [0.5, 0.125].into_iter().flat_map(|eps| [(eps, false), (eps, true)]).collect();
    let reports = parallel_map(&specs, opts.jobs, |&(eps, extrapolate)| {
        let mut o = base(opts, ExecutionPolicy::OnlinePropagation, eps, space);
        o.extrapolate = extrapolate;
        o.workers = pipeline_workers(opts.jobs, specs.len());
        o.observe = opts.observe();
        Autotuner::new(o).tune(&ws)
    });
    for (&(eps, extrapolate), r) in specs.iter().zip(&reports) {
        t.row(vec![
            extrapolate.to_string(),
            f(eps),
            f(r.speedup()),
            f(r.skip_fraction()),
            f(r.mean_error()),
        ]);
    }
    t.emit(&opts.out_dir);
    absorb_obs(
        obs,
        reports,
        specs.iter().map(|&(eps, extrapolate)| format!("extrapolation/{extrapolate}/{eps}")),
    );
}

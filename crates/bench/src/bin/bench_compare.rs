//! Diff two perf-trajectory files (`BENCH_<n>.json`) with a noise tolerance.
//!
//! ```text
//! bench-compare [--tolerance F] [--report-only] OLD.json NEW.json
//! bench-compare --validate FILE.json
//! bench-compare --min-speedup R --min-cases N OLD.json NEW.json
//! ```
//!
//! * Default mode prints a per-case table (old min, new min, speedup,
//!   verdict) and exits non-zero if any case regressed beyond the tolerance.
//! * `--report-only` always exits 0 — CI uses it to surface the diff against
//!   the committed baseline without blocking unrelated changes.
//! * `--validate` parses one file against the trajectory schema and exits
//!   non-zero on any violation (missing key, wrong type, unknown version).
//! * `--min-speedup R --min-cases N` additionally requires at least `N`
//!   cases at `R`× or better — the acceptance gate a speed-pass PR runs
//!   against its own pre-optimization baseline.

use std::path::PathBuf;
use std::process::ExitCode;

use critter_bench::trajectory::{compare, render_comparison, Trajectory, Verdict};

struct Opts {
    tolerance: f64,
    report_only: bool,
    validate: Option<PathBuf>,
    min_speedup: Option<f64>,
    min_cases: usize,
    files: Vec<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench-compare [--tolerance F] [--report-only] \
         [--min-speedup R --min-cases N] OLD.json NEW.json\n       \
         bench-compare --validate FILE.json"
    );
    std::process::exit(2)
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        tolerance: 0.05,
        report_only: false,
        validate: None,
        min_speedup: None,
        min_cases: 2,
        files: Vec::new(),
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                opts.tolerance =
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--report-only" => opts.report_only = true,
            "--validate" => {
                i += 1;
                opts.validate = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--min-speedup" => {
                i += 1;
                opts.min_speedup =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--min-cases" => {
                i += 1;
                opts.min_cases =
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            f if !f.starts_with("--") => opts.files.push(PathBuf::from(f)),
            _ => usage(),
        }
        i += 1;
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();

    if let Some(path) = &opts.validate {
        return match Trajectory::read(path) {
            Ok(t) => {
                println!(
                    "{} is a valid schema-v{} trajectory: {} cases, rev {}, {} ({}/{}, {} cpus)",
                    path.display(),
                    t.schema_version,
                    t.cases.len(),
                    t.git_rev,
                    t.date,
                    t.fingerprint.os,
                    t.fingerprint.arch,
                    t.fingerprint.cpus
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("invalid trajectory: {e}");
                ExitCode::from(2)
            }
        };
    }

    if opts.files.len() != 2 {
        usage();
    }
    let old = match Trajectory::read(&opts.files[0]) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let new = match Trajectory::read(&opts.files[1]) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if old.fingerprint != new.fingerprint {
        eprintln!(
            "warning: trajectories were recorded on different machines \
             ({}/{}/{} cpus vs {}/{}/{} cpus) — wall-clock deltas are not commensurable",
            old.fingerprint.os,
            old.fingerprint.arch,
            old.fingerprint.cpus,
            new.fingerprint.os,
            new.fingerprint.arch,
            new.fingerprint.cpus
        );
    }
    println!("old: rev {} ({})   new: rev {} ({})", old.git_rev, old.date, new.git_rev, new.date);
    let deltas = compare(&old, &new, opts.tolerance);
    print!("{}", render_comparison(&deltas, opts.tolerance));

    let mut failed = false;
    if let Some(r) = opts.min_speedup {
        let hits = deltas.iter().filter(|d| d.speedup.is_some_and(|s| s >= r)).count();
        if hits >= opts.min_cases {
            println!("speedup gate: {hits} case(s) at ≥ {r:.2}x (needed {})", opts.min_cases);
        } else {
            eprintln!(
                "speedup gate FAILED: {hits} case(s) at ≥ {r:.2}x, needed {}",
                opts.min_cases
            );
            failed = true;
        }
    }
    let regressions = deltas.iter().filter(|d| d.verdict == Verdict::Slower).count();
    if regressions > 0 {
        eprintln!("{regressions} case(s) regressed beyond tolerance");
        failed = true;
    }
    if failed && !opts.report_only {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! Render the reproduced figure panels as terminal plots from the CSVs the
//! `fig4`/`fig5` binaries wrote — no re-simulation needed.
//!
//! ```text
//! cargo run -p critter-bench --bin plot --release            # all panels
//! cargo run -p critter-bench --bin plot --release -- results # explicit dir
//! ```

use std::collections::BTreeMap;
use std::path::Path;

use critter_bench::plot::{render, PlotOpts, Series};

/// Minimal CSV reader handling the harness's quoted config names.
fn read_csv(path: &Path) -> Option<(Vec<String>, Vec<Vec<String>>)> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let parse = |line: &str| -> Vec<String> {
        let mut cells = Vec::new();
        let mut cur = String::new();
        let mut quoted = false;
        for ch in line.chars() {
            match ch {
                '"' => quoted = !quoted,
                ',' if !quoted => cells.push(std::mem::take(&mut cur)),
                _ => cur.push(ch),
            }
        }
        cells.push(cur);
        cells
    };
    let header = parse(lines.next()?);
    let rows = lines.map(parse).collect();
    Some((header, rows))
}

fn col(header: &[String], name: &str) -> usize {
    header.iter().position(|h| h == name).unwrap_or_else(|| panic!("missing column {name}"))
}

/// Plot `y` against ε per policy from a sweeps CSV.
fn sweep_panel(dir: &Path, file: &str, metric: &str, title: &str, log_y: bool) {
    let path = dir.join(file);
    let Some((header, rows)) = read_csv(&path) else {
        eprintln!("skipping {title}: {} not found (run fig4/fig5 first)", path.display());
        return;
    };
    let (pi, ei, yi) = (col(&header, "policy"), col(&header, "epsilon"), col(&header, metric));
    let mut by_policy: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for r in &rows {
        let (Ok(x), Ok(y)) = (r[ei].parse::<f64>(), r[yi].parse::<f64>()) else { continue };
        by_policy.entry(r[pi].clone()).or_default().push((x, y));
    }
    let series: Vec<Series> =
        by_policy.into_iter().map(|(label, points)| Series { label, points }).collect();
    let opts = PlotOpts { log_x: true, log_y, ..Default::default() };
    print!("{}", render(title, &series, &opts));
    println!();
}

/// Plot the BSP trade-off cloud (syncs vs words / flops) from a fig3 CSV.
fn fig3_panel(dir: &Path, file: &str, ycol: &str, title: &str) {
    let path = dir.join(file);
    let Some((header, rows)) = read_csv(&path) else {
        eprintln!("skipping {title}: {} not found (run fig3 first)", path.display());
        return;
    };
    let (xi, yi) = (col(&header, "syncs(S)"), col(&header, ycol));
    let points: Vec<(f64, f64)> =
        rows.iter().filter_map(|r| Some((r[xi].parse().ok()?, r[yi].parse().ok()?))).collect();
    let series = [Series { label: "configurations".into(), points }];
    let opts = PlotOpts { log_x: true, log_y: true, height: 14, ..Default::default() };
    print!("{}", render(title, &series, &opts));
    println!();
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let dir = Path::new(&dir);

    // Fig. 3 panels: trade-off clouds per workload.
    for (file, name) in [
        ("fig3-capital-cholesky.csv", "Capital Cholesky"),
        ("fig3-slate-cholesky.csv", "SLATE Cholesky"),
        ("fig3-candmc-qr.csv", "CANDMC QR"),
        ("fig3-slate-qr.csv", "SLATE QR"),
    ] {
        fig3_panel(dir, file, "words(W)", &format!("Fig.3 {name}: path words vs supersteps"));
    }

    // Fig. 4/5 panels: tuning time and error vs ε per policy.
    for (file, fig, name) in [
        ("fig4-capital-cholesky-sweeps.csv", "4a/4e", "Capital Cholesky"),
        ("fig4-slate-cholesky-sweeps.csv", "4b/4f", "SLATE Cholesky"),
        ("fig5-candmc-qr-sweeps.csv", "5a/5e", "CANDMC QR"),
        ("fig5-slate-qr-sweeps.csv", "5b/5f", "SLATE QR"),
    ] {
        sweep_panel(
            dir,
            file,
            "tuning_time",
            &format!("Fig.{fig} {name}: tuning time vs ε"),
            false,
        );
        sweep_panel(
            dir,
            file,
            "mean_err",
            &format!("Fig.{fig} {name}: mean prediction error vs ε"),
            false,
        );
    }
}

//! Doc-drift gate: the CLI flag tables in `README.md` must match the
//! binaries' actual `--help` output, and `docs/SERVICE.md` must match the
//! service's compiled wire contract.
//!
//! For every block
//!
//! ```text
//! <!-- begin doc-check critter-tune -->
//! | `--space NAME` | … |
//! <!-- end doc-check -->
//! ```
//!
//! this tool runs the named sibling binary with `--help`, extracts the set
//! of `--flag` tokens from its output, extracts the same from the README
//! block, and fails (exit 1) on any difference — a flag added to a binary
//! but not documented, or documented but since removed.
//!
//! For `docs/SERVICE.md` it additionally checks, against the linked
//! `critter-serve` crate itself:
//!
//! * the error-code table rows (`| <status> | `<code>` | … |`) are exactly
//!   [`ErrorCode::ALL`](critter_serve::ErrorCode::ALL) — every code the
//!   service can emit is documented with its real status, and no
//!   documented code has been removed from the enum;
//! * the document states the current
//!   [`API_VERSION`](critter_serve::API_VERSION) (the `**API version N**`
//!   marker), so a version bump cannot ship without its docs.
//!
//! CI runs it after `cargo build --release --workspace --bins`, so neither
//! document can drift from the shipped interfaces.
//!
//! ```text
//! cargo build --release --workspace --bins && cargo run --release -p critter-bench --bin doc_check
//! ```

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use critter_serve::{ErrorCode, API_VERSION};

/// Flags every binary has implicitly; not required in the tables.
const IGNORED: [&str; 2] = ["--help", "-h"];

fn flag_set(text: &str) -> BTreeSet<String> {
    let mut flags = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // A flag is `--` followed by a lowercase word (not preceded by
        // another dash) — this skips markdown table rules like `---`.
        let starts_flag = bytes[i] == b'-'
            && (i == 0 || bytes[i - 1] != b'-')
            && i + 2 < bytes.len()
            && bytes[i + 1] == b'-'
            && bytes[i + 2].is_ascii_lowercase();
        if starts_flag {
            let start = i;
            i += 2;
            while i < bytes.len() && (bytes[i].is_ascii_lowercase() || bytes[i] == b'-') {
                i += 1;
            }
            let flag = &text[start..i];
            if !IGNORED.contains(&flag) {
                flags.insert(flag.to_string());
            }
        } else {
            i += 1;
        }
    }
    flags
}

/// `--help` output (stdout + stderr; exit codes are irrelevant, the
/// hand-rolled parsers exit 2 after printing usage).
fn help_output(bin_dir: &Path, name: &str) -> Result<String, String> {
    let path = bin_dir.join(name);
    if !path.is_file() {
        return Err(format!(
            "binary `{}` not found; build it first: cargo build --release --workspace --bins",
            path.display()
        ));
    }
    let output = Command::new(&path)
        .arg("--help")
        .output()
        .map_err(|e| format!("running {} --help: {e}", path.display()))?;
    Ok(format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    ))
}

/// Extract `(binary name, block text)` for every doc-check block.
fn readme_blocks(readme: &str) -> Result<Vec<(String, String)>, String> {
    let mut blocks = Vec::new();
    let mut lines = readme.lines();
    while let Some(line) = lines.next() {
        let trimmed = line.trim();
        let Some(rest) = trimmed.strip_prefix("<!-- begin doc-check ") else {
            continue;
        };
        let Some(name) = rest.strip_suffix(" -->") else {
            return Err(format!("malformed doc-check marker: `{trimmed}`"));
        };
        let mut body = String::new();
        loop {
            match lines.next() {
                Some(l) if l.trim() == "<!-- end doc-check -->" => break,
                Some(l) => {
                    body.push_str(l);
                    body.push('\n');
                }
                None => return Err(format!("unterminated doc-check block for `{name}`")),
            }
        }
        blocks.push((name.to_string(), body));
    }
    if blocks.is_empty() {
        return Err("README.md contains no doc-check blocks".into());
    }
    Ok(blocks)
}

/// Extract `(status, code)` pairs from markdown table rows of the shape
/// `| 429 | `quota_exceeded` | … |`.
fn error_table_rows(text: &str) -> BTreeSet<(u16, String)> {
    let mut rows = BTreeSet::new();
    for line in text.lines() {
        let mut cells = line.trim().split('|').map(str::trim);
        let Some("") = cells.next() else { continue };
        let Some(status) = cells.next().and_then(|c| c.parse::<u16>().ok()) else { continue };
        let Some(code) = cells
            .next()
            .and_then(|c| c.strip_prefix('`'))
            .and_then(|c| c.split_once('`'))
            .map(|(code, _)| code)
        else {
            continue;
        };
        rows.insert((status, code.to_string()));
    }
    rows
}

/// `docs/SERVICE.md` must document exactly the compiled error-code enum
/// and state the compiled API version. Returns whether it drifted.
fn service_doc_drift(service_md: &str) -> bool {
    let mut drifted = false;
    let documented = error_table_rows(service_md);
    let actual: BTreeSet<(u16, String)> =
        ErrorCode::ALL.iter().map(|c| (c.status(), c.as_str().to_string())).collect();
    for (status, code) in actual.difference(&documented) {
        drifted = true;
        eprintln!(
            "doc_check: docs/SERVICE.md error table is missing `{code}` (status {status}) — \
             the service can emit it"
        );
    }
    for (status, code) in documented.difference(&actual) {
        drifted = true;
        eprintln!(
            "doc_check: docs/SERVICE.md documents error code `{code}` (status {status}) \
             but ErrorCode has no such variant"
        );
    }
    let marker = format!("**API version {API_VERSION}**");
    if !service_md.contains(&marker) {
        drifted = true;
        eprintln!(
            "doc_check: docs/SERVICE.md does not state the current API version \
             (expected the marker `{marker}`)"
        );
    }
    if !drifted {
        println!(
            "doc_check: docs/SERVICE.md: {} error codes and API version {API_VERSION} in sync",
            ErrorCode::ALL.len()
        );
    }
    drifted
}

fn main() {
    let bin_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("binary has a parent dir")
        .to_path_buf();
    // CARGO_MANIFEST_DIR is crates/bench; the README lives two levels up.
    let readme_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    let readme = std::fs::read_to_string(&readme_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", readme_path.display()));
    let service_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/SERVICE.md");
    let service_md = std::fs::read_to_string(&service_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", service_path.display()));

    let blocks = match readme_blocks(&readme) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("doc_check: {e}");
            std::process::exit(1);
        }
    };

    let mut drifted = false;
    for (name, body) in &blocks {
        let help = match help_output(&bin_dir, name) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("doc_check: {e}");
                drifted = true;
                continue;
            }
        };
        let documented = flag_set(body);
        let actual = flag_set(&help);
        let missing: Vec<&String> = actual.difference(&documented).collect();
        let stale: Vec<&String> = documented.difference(&actual).collect();
        if missing.is_empty() && stale.is_empty() {
            println!("doc_check: {name}: {} flags in sync", actual.len());
            continue;
        }
        drifted = true;
        for flag in missing {
            eprintln!("doc_check: {name}: `{flag}` exists in --help but is missing from README.md");
        }
        for flag in stale {
            eprintln!("doc_check: {name}: README.md documents `{flag}` but --help does not");
        }
    }
    if service_doc_drift(&service_md) {
        drifted = true;
    }
    if drifted {
        eprintln!(
            "doc_check: documentation drifted; update the README doc-check blocks to match \
             --help and docs/SERVICE.md to match the compiled service contract"
        );
        std::process::exit(1);
    }
}

//! Doc-drift gate: the CLI flag tables in `README.md` must match the
//! binaries' actual `--help` output.
//!
//! For every block
//!
//! ```text
//! <!-- begin doc-check critter-tune -->
//! | `--space NAME` | … |
//! <!-- end doc-check -->
//! ```
//!
//! this tool runs the named sibling binary with `--help`, extracts the set
//! of `--flag` tokens from its output, extracts the same from the README
//! block, and fails (exit 1) on any difference — a flag added to a binary
//! but not documented, or documented but since removed. CI runs it after
//! `cargo build --release --workspace --bins`, so the README can never drift from the
//! shipped interfaces.
//!
//! ```text
//! cargo build --release --workspace --bins && cargo run --release -p critter-bench --bin doc_check
//! ```

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Flags every binary has implicitly; not required in the tables.
const IGNORED: [&str; 2] = ["--help", "-h"];

fn flag_set(text: &str) -> BTreeSet<String> {
    let mut flags = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // A flag is `--` followed by a lowercase word (not preceded by
        // another dash) — this skips markdown table rules like `---`.
        let starts_flag = bytes[i] == b'-'
            && (i == 0 || bytes[i - 1] != b'-')
            && i + 2 < bytes.len()
            && bytes[i + 1] == b'-'
            && bytes[i + 2].is_ascii_lowercase();
        if starts_flag {
            let start = i;
            i += 2;
            while i < bytes.len() && (bytes[i].is_ascii_lowercase() || bytes[i] == b'-') {
                i += 1;
            }
            let flag = &text[start..i];
            if !IGNORED.contains(&flag) {
                flags.insert(flag.to_string());
            }
        } else {
            i += 1;
        }
    }
    flags
}

/// `--help` output (stdout + stderr; exit codes are irrelevant, the
/// hand-rolled parsers exit 2 after printing usage).
fn help_output(bin_dir: &Path, name: &str) -> Result<String, String> {
    let path = bin_dir.join(name);
    if !path.is_file() {
        return Err(format!(
            "binary `{}` not found; build it first: cargo build --release --workspace --bins",
            path.display()
        ));
    }
    let output = Command::new(&path)
        .arg("--help")
        .output()
        .map_err(|e| format!("running {} --help: {e}", path.display()))?;
    Ok(format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    ))
}

/// Extract `(binary name, block text)` for every doc-check block.
fn readme_blocks(readme: &str) -> Result<Vec<(String, String)>, String> {
    let mut blocks = Vec::new();
    let mut lines = readme.lines();
    while let Some(line) = lines.next() {
        let trimmed = line.trim();
        let Some(rest) = trimmed.strip_prefix("<!-- begin doc-check ") else {
            continue;
        };
        let Some(name) = rest.strip_suffix(" -->") else {
            return Err(format!("malformed doc-check marker: `{trimmed}`"));
        };
        let mut body = String::new();
        loop {
            match lines.next() {
                Some(l) if l.trim() == "<!-- end doc-check -->" => break,
                Some(l) => {
                    body.push_str(l);
                    body.push('\n');
                }
                None => return Err(format!("unterminated doc-check block for `{name}`")),
            }
        }
        blocks.push((name.to_string(), body));
    }
    if blocks.is_empty() {
        return Err("README.md contains no doc-check blocks".into());
    }
    Ok(blocks)
}

fn main() {
    let bin_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("binary has a parent dir")
        .to_path_buf();
    // CARGO_MANIFEST_DIR is crates/bench; the README lives two levels up.
    let readme_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    let readme = std::fs::read_to_string(&readme_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", readme_path.display()));

    let blocks = match readme_blocks(&readme) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("doc_check: {e}");
            std::process::exit(1);
        }
    };

    let mut drifted = false;
    for (name, body) in &blocks {
        let help = match help_output(&bin_dir, name) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("doc_check: {e}");
                drifted = true;
                continue;
            }
        };
        let documented = flag_set(body);
        let actual = flag_set(&help);
        let missing: Vec<&String> = actual.difference(&documented).collect();
        let stale: Vec<&String> = documented.difference(&actual).collect();
        if missing.is_empty() && stale.is_empty() {
            println!("doc_check: {name}: {} flags in sync", actual.len());
            continue;
        }
        drifted = true;
        for flag in missing {
            eprintln!("doc_check: {name}: `{flag}` exists in --help but is missing from README.md");
        }
        for flag in stale {
            eprintln!("doc_check: {name}: README.md documents `{flag}` but --help does not");
        }
    }
    if drifted {
        eprintln!(
            "doc_check: README.md CLI tables drifted; update the doc-check blocks to match --help"
        );
        std::process::exit(1);
    }
}

//! Figure 5 (panels a–h): QR autotuning evaluation — the same panel layout as
//! Figure 4, for CANDMC QR (left) and SLATE QR (right): autotuning time vs ε
//! per policy (a/b), max-over-ranks kernel execution time (c), mean
//! critical-path kernel-time prediction error (d), mean execution-time
//! prediction error (e/f), and per-configuration error under online
//! propagation (g/h).

use critter_autotune::TuningSpace;
use critter_bench::{run_figure, FigOpts};

fn main() {
    let opts = FigOpts::from_args();
    run_figure(&opts, TuningSpace::CandmcQr, TuningSpace::SlateQr, "fig5");
}

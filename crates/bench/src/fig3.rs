//! Figure 3 (panels a–l): per-configuration critical-path costs for the four
//! workloads — BSP communication vs synchronization (a–d), BSP computation vs
//! synchronization (e–h), and critical-path execution time (i–l) — measured
//! on full executions, with the analytic BSP models of `critter-bsp` printed
//! alongside for the two algorithms the paper gives closed forms for.
//!
//! Lives in the library (rather than only in the `fig3` binary) so the
//! testkit can drive the full pipeline — including `--trace-out` exports —
//! through [`run_with`] and assert byte-identical artifacts across `--jobs`
//! levels.

use critter_autotune::TuningSpace;
use critter_core::ExecutionPolicy;
use critter_obs::ObsReport;

use crate::{emit_obs, f, parallel_map, sweep_with, write_json, FigOpts, Table};

/// Regenerate Figure 3 over the paper's four tuning spaces.
pub fn run(opts: &FigOpts) {
    run_with(opts, &TuningSpace::PAPER, false);
}

/// [`run`] over an explicit space list; `smoke` swaps in each space's reduced
/// smoke-test configurations (used by the testkit's trace-determinism oracle
/// to keep the end-to-end run fast).
pub fn run_with(opts: &FigOpts, spaces: &[TuningSpace], smoke: bool) {
    let observe = opts.observe();
    let mut summary = serde_json::Map::new();
    // One full-execution pass per configuration measures the schedule's
    // critical-path costs (Fig. 3 is produced from full executions). The
    // spaces are independent: sweep them concurrently, splitting the job
    // budget between space-level fan-out and each sweep's own reference-run
    // pipeline.
    let workers = 1 + opts.jobs / spaces.len().max(1);
    let reports = parallel_map(spaces, opts.jobs, |&space| {
        sweep_with(
            space,
            ExecutionPolicy::Full,
            0.0,
            opts.reps,
            0,
            workers,
            opts.backend,
            observe,
            smoke,
        )
    });
    for (&space, report) in spaces.iter().zip(&reports) {
        let mut table = Table::new(
            &format!("fig3-{}", space.name()),
            &[
                "v",
                "config",
                "syncs(S)",
                "words(W)",
                "flops(F)",
                "comp_time",
                "comm_time",
                "exec_time",
                "bsp_S",
                "bsp_W",
                "bsp_F",
            ],
        );
        let mut rows_json = Vec::new();
        for (v, cfg) in report.configs.iter().enumerate() {
            let (full, _) = &cfg.pairs[0];
            let bsp = if smoke { None } else { analytic(space, v) };
            let (bs, bw, bf) =
                bsp.map(|b| (f(b.supersteps), f(b.words), f(b.flops))).unwrap_or_default();
            table.row(vec![
                v.to_string(),
                cfg.name.clone(),
                f(full.path.syncs),
                f(full.path.comm_words),
                f(full.path.flops),
                f(full.path.comp_time),
                f(full.path.comm_time),
                f(full.elapsed),
                bs,
                bw,
                bf,
            ]);
            rows_json.push(serde_json::json!({
                "v": v,
                "config": cfg.name,
                "syncs": full.path.syncs,
                "words": full.path.comm_words,
                "flops": full.path.flops,
                "exec_time": full.elapsed,
            }));
        }
        table.emit(&opts.out_dir);
        summary.insert(space.name().to_string(), serde_json::Value::Array(rows_json));
    }
    write_json(&opts.out_dir, "fig3", &serde_json::Value::Object(summary));
    if observe {
        // Absorb each space's timeline in the fixed space order — never the
        // dispatch order — so the combined artifact is identical at any
        // `--jobs` level.
        let mut combined = ObsReport::new();
        for (&space, report) in spaces.iter().zip(reports) {
            if let Some(obs) = report.obs {
                combined.absorb(obs, space.name());
            }
        }
        emit_obs(opts, &combined);
    }
}

/// Analytic BSP cost of configuration `v`, where the paper provides a model.
/// The `v` decoding mirrors each space's `bench()` grid, so it only applies
/// to the full (non-smoke) configuration spaces.
fn analytic(space: TuningSpace, v: usize) -> Option<critter_bsp::BspCost> {
    match space {
        TuningSpace::CapitalCholesky => Some(critter_bsp::capital_cholesky(512, 64, 16 << (v % 5))),
        TuningSpace::CandmcQr => {
            let pr = 4 << (v / 5);
            let pc = 16 / pr;
            let (m, n) = (512, 128);
            let mut b = 2 << (v % 5);
            while b > 1 && (m % (b * pr) != 0 || n % (b * pc) != 0) {
                b /= 2;
            }
            Some(critter_bsp::candmc_qr(m, n, pr, pc, b))
        }
        TuningSpace::SlateCholesky => {
            Some(critter_bsp::slate_cholesky(384, 4, 4, 16 + 8 * (v / 2), v % 2))
        }
        TuningSpace::SlateQr => {
            let nb = 8 + 4 * ((v / 3) % 7);
            let w = (2 << (v % 3)).min(nb);
            let pr: usize = (4 / (1 << (v / 21))).max(1);
            let pc = 16 / pr;
            Some(critter_bsp::slate_qr(512, 64, pr, pc, nb, w))
        }
        _ => None, // extension spaces have no paper-provided closed form
    }
}

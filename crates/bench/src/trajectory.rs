//! Perf-trajectory recording: schema-versioned `BENCH_<n>.json` files.
//!
//! A *trajectory file* snapshots the harness results of one bench run —
//! per-case min/median/iteration-count — together with enough provenance to
//! interpret the numbers later: a machine fingerprint, the git revision, the
//! date, and the harness version. PRs commit one trajectory per speed pass
//! (`BENCH_6.json`, `BENCH_7.json`, …), so the repository accumulates a
//! reviewable perf history, and `bench-compare` diffs any two files with a
//! noise tolerance.
//!
//! Schema guarantees (see DESIGN.md):
//!
//! * `schema_version` gates parsing — readers reject files from a different
//!   major schema rather than misinterpreting them;
//! * case identity is the `(group, case)` pair and is stable across PRs;
//! * all durations are integer nanoseconds (no float round-tripping);
//! * serialization is canonical JSON (sorted keys, fixed layout), so equal
//!   trajectories are byte-identical and diffs are reviewable.

use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use serde_json::{json, Value};

use crate::harness::Timing;

/// Version of the trajectory schema this harness writes.
pub const TRAJECTORY_SCHEMA_VERSION: u64 = 1;

/// Identity of the machine a trajectory was recorded on. Comparisons across
/// different fingerprints are still printed, but flagged: wall-clock numbers
/// from different machines are not commensurable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Logical CPUs available to the process.
    pub cpus: u64,
}

impl Fingerprint {
    /// Fingerprint of the current machine. Deterministic within a process.
    pub fn detect() -> Self {
        Fingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1),
        }
    }

    fn to_json(&self) -> Value {
        json!({ "os": self.os, "arch": self.arch, "cpus": self.cpus })
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let bad = |key: &str| format!("trajectory fingerprint: bad key `{key}`");
        Ok(Fingerprint {
            os: v.get("os").and_then(Value::as_str).ok_or_else(|| bad("os"))?.to_string(),
            arch: v.get("arch").and_then(Value::as_str).ok_or_else(|| bad("arch"))?.to_string(),
            cpus: v.get("cpus").and_then(Value::as_u64).ok_or_else(|| bad("cpus"))?,
        })
    }
}

/// One benchmark case's summarized timings, in integer nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseResult {
    /// Bench group (e.g. `sim`).
    pub group: String,
    /// Case name within the group (e.g. `compute_loop`).
    pub case: String,
    /// Fastest observed iteration.
    pub min_ns: u64,
    /// Median iteration (midpoint-interpolated for even sample counts).
    pub median_ns: u64,
    /// Number of timed iterations.
    pub iters: u64,
}

impl CaseResult {
    fn to_json(&self) -> Value {
        json!({
            "group": self.group,
            "case": self.case,
            "min_ns": self.min_ns,
            "median_ns": self.median_ns,
            "iters": self.iters,
        })
    }

    fn from_json(v: &Value, idx: usize) -> Result<Self, String> {
        let bad = |key: &str| format!("trajectory: bad key `cases[{idx}].{key}`");
        Ok(CaseResult {
            group: v.get("group").and_then(Value::as_str).ok_or_else(|| bad("group"))?.into(),
            case: v.get("case").and_then(Value::as_str).ok_or_else(|| bad("case"))?.into(),
            min_ns: v.get("min_ns").and_then(Value::as_u64).ok_or_else(|| bad("min_ns"))?,
            median_ns: v
                .get("median_ns")
                .and_then(Value::as_u64)
                .ok_or_else(|| bad("median_ns"))?,
            iters: v.get("iters").and_then(Value::as_u64).ok_or_else(|| bad("iters"))?,
        })
    }
}

/// A full perf-trajectory file: provenance plus per-case results.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Schema version the file was written with.
    pub schema_version: u64,
    /// Version of `critter-bench` that recorded the file.
    pub harness_version: String,
    /// Git revision (short hash) at record time, or `"unknown"`.
    pub git_rev: String,
    /// UTC date at record time, `YYYY-MM-DD`.
    pub date: String,
    /// Machine the numbers were recorded on.
    pub fingerprint: Fingerprint,
    /// Per-case results, in recording order.
    pub cases: Vec<CaseResult>,
}

impl Trajectory {
    /// Empty trajectory stamped with the current machine, git revision, and
    /// date.
    pub fn capture() -> Self {
        Trajectory {
            schema_version: TRAJECTORY_SCHEMA_VERSION,
            harness_version: env!("CARGO_PKG_VERSION").to_string(),
            git_rev: git_short_rev(),
            date: utc_date_today(),
            fingerprint: Fingerprint::detect(),
            cases: Vec::new(),
        }
    }

    /// Record one case's [`Timing`] under `(group, case)`.
    pub fn record(&mut self, group: &str, case: &str, t: Timing) {
        self.cases.push(CaseResult {
            group: group.to_string(),
            case: case.to_string(),
            min_ns: t.min.as_nanos() as u64,
            median_ns: t.median.as_nanos() as u64,
            iters: t.iters as u64,
        });
    }

    /// Look up a case by `(group, case)`.
    pub fn case(&self, group: &str, case: &str) -> Option<&CaseResult> {
        self.cases.iter().find(|c| c.group == group && c.case == case)
    }

    /// Canonical JSON form.
    pub fn to_json(&self) -> Value {
        json!({
            "schema_version": self.schema_version,
            "harness_version": self.harness_version,
            "git_rev": self.git_rev,
            "date": self.date,
            "fingerprint": self.fingerprint.to_json(),
            "cases": self.cases.iter().map(CaseResult::to_json).collect::<Vec<_>>(),
        })
    }

    /// Pretty canonical JSON with a trailing newline (the committed form).
    pub fn to_json_string(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_json()).expect("serialize trajectory");
        s.push('\n');
        s
    }

    /// Parse a trajectory, rejecting unknown schema versions.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let bad = |key: &str| format!("trajectory: bad key `{key}`");
        let version =
            v.get("schema_version").and_then(Value::as_u64).ok_or_else(|| bad("schema_version"))?;
        if version != TRAJECTORY_SCHEMA_VERSION {
            return Err(format!(
                "trajectory schema version {version} unsupported (this harness reads {TRAJECTORY_SCHEMA_VERSION})"
            ));
        }
        let cases = v
            .get("cases")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("cases"))?
            .iter()
            .enumerate()
            .map(|(i, c)| CaseResult::from_json(c, i))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trajectory {
            schema_version: version,
            harness_version: v
                .get("harness_version")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("harness_version"))?
                .to_string(),
            git_rev: v.get("git_rev").and_then(Value::as_str).ok_or_else(|| bad("git_rev"))?.into(),
            date: v.get("date").and_then(Value::as_str).ok_or_else(|| bad("date"))?.into(),
            fingerprint: Fingerprint::from_json(
                v.get("fingerprint").ok_or_else(|| bad("fingerprint"))?,
            )?,
            cases,
        })
    }

    /// Write the canonical form to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json_string())
    }

    /// Read and parse a trajectory file.
    pub fn read(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let v: Value =
            serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        Self::from_json(&v).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Comparison verdict for one case between two trajectories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// New min beats old min by more than the tolerance.
    Faster,
    /// New min loses to old min by more than the tolerance.
    Slower,
    /// Within tolerance either way.
    Unchanged,
    /// Case exists only in the new trajectory.
    Added,
    /// Case exists only in the old trajectory.
    Removed,
}

impl Verdict {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Faster => "faster",
            Verdict::Slower => "SLOWER",
            Verdict::Unchanged => "~",
            Verdict::Added => "added",
            Verdict::Removed => "removed",
        }
    }
}

/// One case's delta between an old and a new trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseDelta {
    /// Bench group.
    pub group: String,
    /// Case name.
    pub case: String,
    /// Old min, if the case exists in the old trajectory.
    pub old_min_ns: Option<u64>,
    /// New min, if the case exists in the new trajectory.
    pub new_min_ns: Option<u64>,
    /// `old_min / new_min` (>1 means the new trajectory is faster).
    pub speedup: Option<f64>,
    /// Tolerance-aware verdict.
    pub verdict: Verdict,
}

/// Diff two trajectories with a relative noise `tolerance` (e.g. `0.05`):
/// a case is `Faster`/`Slower` only when its min moved by more than the
/// tolerance. Cases are reported in the new trajectory's order, with removed
/// cases appended in the old trajectory's order.
pub fn compare(old: &Trajectory, new: &Trajectory, tolerance: f64) -> Vec<CaseDelta> {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let mut deltas = Vec::new();
    for c in &new.cases {
        let delta = match old.case(&c.group, &c.case) {
            Some(o) => {
                let speedup = o.min_ns as f64 / (c.min_ns as f64).max(1.0);
                let verdict = if speedup >= 1.0 + tolerance {
                    Verdict::Faster
                } else if speedup <= 1.0 / (1.0 + tolerance) {
                    Verdict::Slower
                } else {
                    Verdict::Unchanged
                };
                CaseDelta {
                    group: c.group.clone(),
                    case: c.case.clone(),
                    old_min_ns: Some(o.min_ns),
                    new_min_ns: Some(c.min_ns),
                    speedup: Some(speedup),
                    verdict,
                }
            }
            None => CaseDelta {
                group: c.group.clone(),
                case: c.case.clone(),
                old_min_ns: None,
                new_min_ns: Some(c.min_ns),
                speedup: None,
                verdict: Verdict::Added,
            },
        };
        deltas.push(delta);
    }
    for o in &old.cases {
        if new.case(&o.group, &o.case).is_none() {
            deltas.push(CaseDelta {
                group: o.group.clone(),
                case: o.case.clone(),
                old_min_ns: Some(o.min_ns),
                new_min_ns: None,
                speedup: None,
                verdict: Verdict::Removed,
            });
        }
    }
    deltas
}

/// Render a comparison as an aligned table plus a one-line summary.
pub fn render_comparison(deltas: &[CaseDelta], tolerance: f64) -> String {
    use std::fmt::Write as _;
    let ns = |v: Option<u64>| v.map_or("-".to_string(), |n| format!("{n}"));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} {:>14} {:>14} {:>9}  verdict",
        "case", "old min (ns)", "new min (ns)", "speedup"
    );
    let (mut faster, mut slower) = (0usize, 0usize);
    for d in deltas {
        match d.verdict {
            Verdict::Faster => faster += 1,
            Verdict::Slower => slower += 1,
            _ => {}
        }
        let _ = writeln!(
            out,
            "{:<40} {:>14} {:>14} {:>9}  {}",
            format!("{}/{}", d.group, d.case),
            ns(d.old_min_ns),
            ns(d.new_min_ns),
            d.speedup.map_or("-".to_string(), |s| format!("{s:.2}x")),
            d.verdict.label()
        );
    }
    let _ = writeln!(
        out,
        "{} cases: {faster} faster, {slower} slower, tolerance ±{:.0}%",
        deltas.len(),
        tolerance * 100.0
    );
    out
}

/// Short git revision of the working tree, or `"unknown"` outside a checkout.
fn git_short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, no external crates).
fn utc_date_today() -> String {
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Howard Hinnant's `civil_from_days`: days since 1970-01-01 → (y, m, d).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // 2024-01-01
        assert_eq!(civil_from_days(11_016), (2000, 2, 29)); // leap day
    }

    #[test]
    fn date_is_iso_shaped() {
        let d = utc_date_today();
        assert_eq!(d.len(), 10);
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
    }
}

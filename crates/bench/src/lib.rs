//! # critter-bench
//!
//! The figure-regeneration harness. Each binary reproduces one of the paper's
//! evaluation figures on the scaled configuration spaces (see DESIGN.md's
//! per-experiment index):
//!
//! * `fig3` — BSP trade-off panels 3a–3l (measured critical-path costs per
//!   configuration + analytic BSP cross-check);
//! * `fig4` — Cholesky autotuning time and prediction error, panels 4a–4h;
//! * `fig5` — QR autotuning time and prediction error, panels 5a–5h;
//! * `ablate` — the DESIGN.md ablations (noise amplitude, profiling
//!   overhead charging, signature granularity, count scaling).
//!
//! Binaries print aligned tables to stdout and write CSV + JSON into
//! `results/` so EXPERIMENTS.md's paper-vs-measured entries can be refreshed
//! mechanically. Pass `--quick` for a reduced ε grid.

pub mod fig3;
pub mod harness;
pub mod plot;
pub mod trajectory;

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use critter_autotune::{Autotuner, SessionConfig, TuningOptions, TuningReport, TuningSpace};
use critter_core::ExecutionPolicy;
use critter_obs::ObsReport;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct FigOpts {
    /// Reduced ε grid and single repetition.
    pub quick: bool,
    /// Number of node allocations to repeat the experiment on (paper: 2).
    pub allocations: u64,
    /// Repetitions per configuration within an allocation.
    pub reps: usize,
    /// Output directory for CSV/JSON artifacts.
    pub out_dir: PathBuf,
    /// Threads used to run independent tuning sweeps concurrently. Sweeps
    /// are deterministic per (policy, ε, allocation), so the artifacts are
    /// identical at any job count.
    pub jobs: usize,
    /// Write a Chrome/Perfetto trace-event JSON of every simulated run here
    /// (`--trace-out`). Byte-identical at any `--jobs` level.
    pub trace_out: Option<PathBuf>,
    /// Write a folded-stack flamegraph file here (`--folded-out`).
    pub folded_out: Option<PathBuf>,
    /// Write the aggregated metrics registry (canonical JSON) here
    /// (`--metrics-out`).
    pub metrics_out: Option<PathBuf>,
    /// Base directory for per-sweep checkpoints (`--checkpoint-dir`). Each
    /// `(space, policy, ε, allocation)` sweep checkpoints into its own
    /// subdirectory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from existing checkpoints (`--resume`). Without it, stale
    /// per-sweep checkpoint directories are cleared so every sweep starts
    /// fresh.
    pub resume: bool,
    /// Kernel-model profile to warm-start every sweep from (`--warm-start`).
    pub warm_start: Option<PathBuf>,
    /// Base directory for per-sweep kernel-model profiles (`--profile-out`).
    pub profile_out: Option<PathBuf>,
    /// Shared content-addressed profile store every persist-models sweep
    /// warm-starts from and publishes back into (`--store`).
    pub store: Option<PathBuf>,
    /// Rank-panic probability per fault point (`--faults P`): arms
    /// deterministic fault injection, routing sweeps through the
    /// fault-tolerant session engine.
    pub faults: Option<f64>,
    /// Seed of the fault stream (`--fault-seed N`).
    pub fault_seed: u64,
    /// Retry budget per simulated run when faults are armed (`--retries N`).
    pub retries: usize,
    /// Communicator backend hosting the simulated ranks (`--backend
    /// threads|tasks`). Virtual time is backend-independent, so artifacts
    /// are byte-identical either way.
    pub backend: critter_sim::BackendKind,
}

/// Default sweep-level job count: the host's cores, capped at 8.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

impl FigOpts {
    /// The flag defaults (what a bare binary invocation runs with).
    pub fn defaults() -> Self {
        FigOpts {
            quick: false,
            allocations: 1,
            reps: 1,
            out_dir: PathBuf::from("results"),
            jobs: default_jobs(),
            trace_out: None,
            folded_out: None,
            metrics_out: None,
            checkpoint_dir: None,
            resume: false,
            warm_start: None,
            profile_out: None,
            store: None,
            faults: None,
            fault_seed: 0xFA17,
            retries: 2,
            backend: critter_sim::BackendKind::default(),
        }
    }

    /// Parse from `std::env::args` (flags: `--quick`, `--allocations N`,
    /// `--reps N`, `--out DIR`, `--jobs N`, `--trace-out FILE`,
    /// `--folded-out FILE`, `--metrics-out FILE`, `--checkpoint-dir DIR`,
    /// `--resume`, `--warm-start FILE`, `--profile-out DIR`, `--store DIR`,
    /// `--faults P`, `--fault-seed N`, `--retries N`,
    /// `--backend threads|tasks`).
    pub fn from_args() -> Self {
        let mut opts = Self::defaults();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => opts.quick = true,
                "--allocations" => {
                    i += 1;
                    opts.allocations = args[i].parse().expect("--allocations N");
                }
                "--reps" => {
                    i += 1;
                    opts.reps = args[i].parse().expect("--reps N");
                }
                "--out" => {
                    i += 1;
                    opts.out_dir = PathBuf::from(&args[i]);
                }
                "--jobs" => {
                    i += 1;
                    opts.jobs = args[i].parse::<usize>().expect("--jobs N").max(1);
                }
                "--trace-out" => {
                    i += 1;
                    opts.trace_out = Some(PathBuf::from(&args[i]));
                }
                "--folded-out" => {
                    i += 1;
                    opts.folded_out = Some(PathBuf::from(&args[i]));
                }
                "--metrics-out" => {
                    i += 1;
                    opts.metrics_out = Some(PathBuf::from(&args[i]));
                }
                "--checkpoint-dir" => {
                    i += 1;
                    opts.checkpoint_dir = Some(PathBuf::from(&args[i]));
                }
                "--resume" => opts.resume = true,
                "--warm-start" => {
                    i += 1;
                    opts.warm_start = Some(PathBuf::from(&args[i]));
                }
                "--profile-out" => {
                    i += 1;
                    opts.profile_out = Some(PathBuf::from(&args[i]));
                }
                "--store" => {
                    i += 1;
                    opts.store = Some(PathBuf::from(&args[i]));
                }
                "--faults" => {
                    i += 1;
                    opts.faults = Some(args[i].parse().expect("--faults PANIC_PROB"));
                }
                "--fault-seed" => {
                    i += 1;
                    opts.fault_seed = args[i].parse().expect("--fault-seed N");
                }
                "--retries" => {
                    i += 1;
                    opts.retries = args[i].parse().expect("--retries N");
                }
                "--backend" => {
                    i += 1;
                    opts.backend =
                        args[i].parse().unwrap_or_else(|e| panic!("--backend threads|tasks: {e}"));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "figure-driver flags:\n\
                         \x20 [--quick] [--allocations N=1] [--reps N=1] [--out DIR=results]\n\
                         \x20 [--jobs N] [--trace-out FILE] [--folded-out FILE] [--metrics-out FILE]\n\
                         \x20 [--checkpoint-dir DIR] [--resume] [--warm-start FILE]\n\
                         \x20 [--profile-out DIR] [--store DIR] [--faults PANIC_PROB]\n\
                         \x20 [--fault-seed N=0xFA17]\n\
                         \x20 [--retries N=2] [--backend <threads|tasks>]"
                    );
                    std::process::exit(2)
                }
                other => panic!("unknown flag {other}"),
            }
            i += 1;
        }
        opts
    }

    /// The ε grid: the paper sweeps ε = 1 down to 2⁻⁸; quick mode uses three
    /// representative points.
    pub fn epsilons(&self) -> Vec<f64> {
        if self.quick {
            vec![1.0, 0.25, 0.0625]
        } else {
            (0..=8).map(|k| 1.0 / (1u64 << k) as f64).collect()
        }
    }

    /// Whether any observability export was requested.
    pub fn observe(&self) -> bool {
        self.trace_out.is_some() || self.folded_out.is_some() || self.metrics_out.is_some()
    }

    /// Whether any session feature (checkpoints, warm-start, profile
    /// persistence, fault injection) was requested: such sweeps route
    /// through the fault-tolerant session engine instead of the plain
    /// in-memory driver.
    pub fn session(&self) -> bool {
        self.checkpoint_dir.is_some()
            || self.warm_start.is_some()
            || self.profile_out.is_some()
            || self.store.is_some()
            || self.faults.is_some()
    }
}

/// Write the requested observability artifacts (Chrome trace, folded stacks,
/// metrics JSON) for an assembled [`ObsReport`]. Creates parent directories
/// as needed; paths come from `--trace-out` / `--folded-out` /
/// `--metrics-out`.
pub fn emit_obs(opts: &FigOpts, obs: &ObsReport) {
    let write = |path: &Path, text: String| {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).expect("create trace output dir");
            }
        }
        fs::write(path, text).expect("write observability artifact");
        eprintln!("wrote {}", path.display());
    };
    if let Some(path) = &opts.trace_out {
        write(path, obs.timeline.to_chrome_string());
    }
    if let Some(path) = &opts.folded_out {
        write(path, obs.timeline.to_folded());
    }
    if let Some(path) = &opts.metrics_out {
        write(path, obs.metrics_string());
    }
}

/// Run one `(space, policy, ε, allocation)` tuning sweep with the paper's
/// per-space statistics-reset protocol. `workers` > 1 pipelines the sweep's
/// reference full executions (bit-identical result either way), and
/// `backend` selects the communicator backend hosting the simulated ranks
/// (also bit-identical either way).
#[allow(clippy::too_many_arguments)] // a flat sweep-spec
pub fn sweep(
    space: TuningSpace,
    policy: ExecutionPolicy,
    epsilon: f64,
    reps: usize,
    allocation: u64,
    workers: usize,
    backend: critter_sim::BackendKind,
) -> TuningReport {
    sweep_with(space, policy, epsilon, reps, allocation, workers, backend, false, false)
}

/// [`sweep`] with the observability and configuration-space knobs exposed:
/// `observe` records the sweep's trace/metrics timeline into
/// [`TuningReport::obs`]; `smoke` tunes over the space's reduced smoke-test
/// configurations instead of the full benchmark grid.
#[allow(clippy::too_many_arguments)] // a flat sweep-spec, mirroring `sweep`
pub fn sweep_with(
    space: TuningSpace,
    policy: ExecutionPolicy,
    epsilon: f64,
    reps: usize,
    allocation: u64,
    workers: usize,
    backend: critter_sim::BackendKind,
    observe: bool,
    smoke: bool,
) -> TuningReport {
    let mut opts = TuningOptions::new(policy, epsilon).with_workers(workers).with_backend(backend);
    opts.reset_between_configs = space.resets_between_configs();
    opts.reps = reps;
    opts.allocation = allocation;
    opts.observe = observe;
    let workloads = if smoke { space.smoke() } else { space.bench() };
    Autotuner::new(opts).tune(&workloads)
}

/// Filesystem-safe slug identifying one sweep (used to key per-sweep
/// checkpoint directories and profile files).
pub fn sweep_slug(
    space: TuningSpace,
    policy: ExecutionPolicy,
    epsilon: f64,
    allocation: u64,
) -> String {
    format!("{}-{}-eps{epsilon}-a{allocation}", space.name(), policy.name().replace(' ', "-"))
}

/// One `(space, policy, ε, allocation)` sweep through the session engine,
/// honoring the session flags: per-sweep checkpoint directory (cleared
/// unless `--resume`), warm-start profile, per-sweep profile output, and
/// fault injection with the configured retry budget.
pub fn session_sweep(
    opts: &FigOpts,
    space: TuningSpace,
    policy: ExecutionPolicy,
    epsilon: f64,
    allocation: u64,
) -> TuningReport {
    let mut topts = TuningOptions::new(policy, epsilon).with_backend(opts.backend);
    topts.reset_between_configs = space.resets_between_configs();
    topts.reps = opts.reps;
    topts.allocation = allocation;
    if let Some(p) = opts.faults {
        topts = topts
            .with_faults(critter_sim::FaultPlan::new(opts.fault_seed).with_rank_panics(p))
            .with_retries(opts.retries);
    }
    let slug = sweep_slug(space, policy, epsilon, allocation);
    let mut session = SessionConfig::new();
    if let Some(base) = &opts.checkpoint_dir {
        let dir = base.join(&slug);
        if !opts.resume {
            let _ = fs::remove_dir_all(&dir);
        }
        session = session.with_checkpoint_dir(dir);
    }
    if let Some(profile) = &opts.warm_start {
        // Warm-start requires the persist-models protocol; sweeps that reset
        // statistics between configurations (SLATE, CANDMC) would refuse it.
        if topts.reset_between_configs {
            eprintln!("note: {slug} resets models per config; ignoring --warm-start");
        } else {
            session = session.with_warm_start(profile);
        }
    }
    if let Some(base) = &opts.profile_out {
        fs::create_dir_all(base).expect("create profile output dir");
        session = session.with_profile_out(base.join(format!("{slug}.json")));
    }
    if let Some(dir) = &opts.store {
        // The store, like a warm-start file, seeds models before the sweep
        // and therefore needs the persist-models protocol.
        if topts.reset_between_configs {
            eprintln!("note: {slug} resets models per config; ignoring --store");
        } else {
            session = session.with_store(dir);
        }
    }
    Autotuner::new(topts)
        .tune_session(&space.bench(), &session)
        .unwrap_or_else(|e| panic!("session sweep {slug} failed: {e}"))
}

/// Map `f` over `items` on up to `jobs` threads, preserving input order in
/// the returned vector. Items are pulled from an atomic queue, so long and
/// short jobs load-balance; `jobs <= 1` degenerates to a plain serial map.
/// A panicking job propagates to the caller.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner().unwrap_or_else(|e| e.into_inner()).expect("parallel_map job completed")
        })
        .collect()
}

/// A CSV/table writer that accumulates rows and flushes to disk + stdout.
pub struct Table {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column names.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.name);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout and write `<out_dir>/<name>.csv`.
    pub fn emit(&self, out_dir: &Path) {
        println!("{}", self.render());
        fs::create_dir_all(out_dir).expect("create results dir");
        let quote = |c: &String| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut csv = self.header.iter().map(quote).collect::<Vec<_>>().join(",") + "\n";
        for row in &self.rows {
            csv.push_str(&row.iter().map(quote).collect::<Vec<_>>().join(","));
            csv.push('\n');
        }
        let path = out_dir.join(format!("{}.csv", self.name));
        fs::write(&path, csv).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
}

/// Format a float with engineering-friendly precision.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e4 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// The five selective policies plus labels, in the paper's order.
pub fn policies() -> Vec<(ExecutionPolicy, &'static str)> {
    ExecutionPolicy::ALL_SELECTIVE.iter().map(|&p| (p, p.name())).collect()
}

/// Dump a JSON summary next to the CSVs.
pub fn write_json(out_dir: &Path, name: &str, value: &serde_json::Value) {
    fs::create_dir_all(out_dir).expect("create results dir");
    let path = out_dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value).expect("serialize")).expect("write json");
    eprintln!("wrote {}", path.display());
}

/// Shared implementation for Figures 4 (Cholesky) and 5 (QR): `space_a` fills
/// the left panels, `space_b` the right ones.
pub fn run_figure(opts: &FigOpts, space_a: TuningSpace, space_b: TuningSpace, fig: &str) {
    let mut summary = Vec::new();
    for space in [space_a, space_b] {
        let mut sweep_table = Table::new(
            &format!("{fig}-{}-sweeps", space.name()),
            &[
                "policy",
                "epsilon",
                "alloc",
                "tuning_time",
                "full_time",
                "speedup",
                "kernel_time",
                "full_kernel_time",
                "kernel_speedup",
                "mean_err",
                "mean_comp_err",
                "skip_frac",
                "sel_quality",
            ],
        );
        let mut per_config = Table::new(
            &format!("{fig}-{}-online-per-config", space.name()),
            &["epsilon", "alloc", "v", "config", "rel_error", "true_time", "predicted"],
        );
        // Every (allocation, policy, ε) sweep is independent and
        // deterministic: fan them out over the job pool, then emit rows in
        // the original order so tables and JSON match the serial harness.
        let mut specs: Vec<(u64, ExecutionPolicy, &'static str, f64)> = Vec::new();
        for allocation in 0..opts.allocations {
            for &(policy, label) in &policies() {
                for &eps in &opts.epsilons() {
                    specs.push((allocation, policy, label, eps));
                }
            }
        }
        let reports = parallel_map(&specs, opts.jobs, |&(allocation, policy, _, eps)| {
            if opts.session() {
                session_sweep(opts, space, policy, eps, allocation)
            } else {
                sweep(space, policy, eps, opts.reps, allocation, 1, opts.backend)
            }
        });
        for (&(allocation, policy, label, eps), report) in specs.iter().zip(&reports) {
            sweep_table.row(vec![
                label.to_string(),
                f(eps),
                allocation.to_string(),
                f(report.tuning_time()),
                f(report.full_time()),
                f(report.speedup()),
                f(report.kernel_time()),
                f(report.full_kernel_time()),
                f(report.kernel_time_speedup()),
                f(report.mean_error()),
                f(report.mean_comp_error()),
                f(report.skip_fraction()),
                f(report.selection_quality()),
            ]);
            summary.push(serde_json::json!({
                "space": space.name(),
                "policy": label,
                "epsilon": eps,
                "allocation": allocation,
                "tuning_time": report.tuning_time(),
                "full_time": report.full_time(),
                "speedup": report.speedup(),
                "kernel_time_speedup": report.kernel_time_speedup(),
                "mean_error": report.mean_error(),
                "mean_comp_error": report.mean_comp_error(),
                "selection_quality": report.selection_quality(),
                "skip_fraction": report.skip_fraction(),
            }));
            // Panels g/h: per-configuration error for online freq
            // propagation.
            if policy == ExecutionPolicy::OnlinePropagation {
                let errs = report.per_config_error();
                let truth = report.true_times();
                let preds = report.predicted_times();
                for (v, cfg) in report.configs.iter().enumerate() {
                    per_config.row(vec![
                        f(eps),
                        allocation.to_string(),
                        v.to_string(),
                        cfg.name.clone(),
                        f(errs[v]),
                        f(truth[v]),
                        f(preds[v]),
                    ]);
                }
            }
        }
        sweep_table.emit(&opts.out_dir);
        per_config.emit(&opts.out_dir);
    }
    write_json(&opts.out_dir, fig, &serde_json::Value::Array(summary));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-col"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-col"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert!(f(123456.0).contains('e'));
        assert_eq!(f(1.5), "1.5000");
    }

    #[test]
    fn parallel_map_preserves_order_and_runs_all() {
        let items: Vec<usize> = (0..37).collect();
        let serial = parallel_map(&items, 1, |&x| x * x);
        let parallel = parallel_map(&items, 4, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[36], 36 * 36);
    }

    #[test]
    fn epsilon_grids() {
        let quick = FigOpts { quick: true, ..FigOpts::defaults() };
        assert_eq!(quick.epsilons().len(), 3);
        let full = FigOpts { quick: false, ..quick };
        assert_eq!(full.epsilons().len(), 9);
        assert_eq!(full.epsilons()[8], 1.0 / 256.0);
    }

    #[test]
    fn session_flags_route_through_the_session_engine() {
        let plain = FigOpts::defaults();
        assert!(!plain.session());
        let faulted = FigOpts { faults: Some(1e-4), ..FigOpts::defaults() };
        assert!(faulted.session());
        let ckpt = FigOpts { checkpoint_dir: Some("ck".into()), ..FigOpts::defaults() };
        assert!(ckpt.session());
        assert_eq!(
            sweep_slug(TuningSpace::SlateCholesky, ExecutionPolicy::LocalPropagation, 0.25, 1),
            format!("{}-local-propagation-eps0.25-a1", TuningSpace::SlateCholesky.name())
        );
    }
}

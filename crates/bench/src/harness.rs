//! A small wall-clock benchmarking harness (the workspace has no registry
//! access, so Criterion is not available offline).
//!
//! Each bench target is a plain `harness = false` binary that times closures
//! with [`fn@bench`] and prints one aligned line per case: minimum, median, and
//! iteration count. The minimum is the headline number — for a deterministic
//! CPU-bound workload it is the least noisy location statistic.

use std::time::{Duration, Instant};

/// Re-export for bench bodies to defeat constant folding.
pub use std::hint::black_box;

/// Result of timing one case.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Number of timed iterations.
    pub iters: usize,
}

/// Reduce raw per-iteration samples to a [`Timing`]. For an odd sample count
/// the median is the middle sample; for an even count it is the midpoint of
/// the two middle samples, so the headline number does not jitter between
/// adjacent-ranked samples across runs. `iters` is the sample count.
pub fn summarize(mut samples: Vec<Duration>) -> Timing {
    assert!(!samples.is_empty(), "at least one sample");
    samples.sort_unstable();
    let n = samples.len();
    let median = if n.is_multiple_of(2) {
        (samples[n / 2 - 1] + samples[n / 2]) / 2
    } else {
        samples[n / 2]
    };
    Timing { min: samples[0], median, iters: n }
}

/// Maximum untimed warm-up runs before timing starts regardless of convergence.
const WARMUP_CAP: usize = 8;

/// Relative tolerance for declaring two consecutive warm-up runs converged.
const WARMUP_TOL: f64 = 0.25;

/// Two consecutive warm-up durations count as converged when they agree within
/// [`WARMUP_TOL`] (or both are too fast for the difference to matter).
fn warmed_up(a: Duration, b: Duration) -> bool {
    let hi = a.max(b);
    let lo = a.min(b);
    hi <= Duration::from_micros(1) || (hi - lo).as_secs_f64() <= WARMUP_TOL * hi.as_secs_f64()
}

/// Time `f` for `iters` iterations after untimed warm-up runs.
///
/// A single warm-up run is not enough for cold cases: the second call may
/// still pay pool-spawn, allocator-growth, or lazy-initialization costs and
/// pollute `min`. Warm-up therefore repeats until two consecutive runs agree
/// within tolerance, capped at `WARMUP_CAP` runs.
pub fn time(mut f: impl FnMut(), iters: usize) -> Timing {
    assert!(iters > 0, "at least one iteration");
    let mut prev: Option<Duration> = None;
    for _ in 0..WARMUP_CAP {
        let start = Instant::now();
        f();
        let d = start.elapsed();
        let done = prev.is_some_and(|p| warmed_up(p, d));
        prev = Some(d);
        if done {
            break;
        }
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    summarize(samples)
}

/// Time `f` and print one `group/case` result line.
pub fn bench(group: &str, case: &str, iters: usize, f: impl FnMut()) -> Timing {
    let t = time(f, iters);
    println!(
        "{:<44} min {:>10.3?}  median {:>10.3?}  ({} iters)",
        format!("{group}/{case}"),
        t.min,
        t.median,
        t.iters
    );
    t
}

/// Format a speedup ratio between two timings (a vs b: how much faster is b).
pub fn speedup(a: Timing, b: Timing) -> f64 {
    a.min.as_secs_f64() / b.min.as_secs_f64().max(1e-12)
}

//! A small wall-clock benchmarking harness (the workspace has no registry
//! access, so Criterion is not available offline).
//!
//! Each bench target is a plain `harness = false` binary that times closures
//! with [`fn@bench`] and prints one aligned line per case: minimum, median, and
//! iteration count. The minimum is the headline number — for a deterministic
//! CPU-bound workload it is the least noisy location statistic.

use std::time::{Duration, Instant};

/// Re-export for bench bodies to defeat constant folding.
pub use std::hint::black_box;

/// Result of timing one case.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Number of timed iterations.
    pub iters: usize,
}

/// Reduce raw per-iteration samples to a [`Timing`]. The median is the
/// upper median (index `n/2` of the sorted samples); `iters` is the sample
/// count.
pub fn summarize(mut samples: Vec<Duration>) -> Timing {
    assert!(!samples.is_empty(), "at least one sample");
    samples.sort_unstable();
    Timing { min: samples[0], median: samples[samples.len() / 2], iters: samples.len() }
}

/// Time `f` for `iters` iterations after one untimed warm-up run.
pub fn time(mut f: impl FnMut(), iters: usize) -> Timing {
    assert!(iters > 0, "at least one iteration");
    f(); // warm-up: page in code, fill allocator caches, spawn pools
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    summarize(samples)
}

/// Time `f` and print one `group/case` result line.
pub fn bench(group: &str, case: &str, iters: usize, f: impl FnMut()) -> Timing {
    let t = time(f, iters);
    println!(
        "{:<44} min {:>10.3?}  median {:>10.3?}  ({} iters)",
        format!("{group}/{case}"),
        t.min,
        t.median,
        t.iters
    );
    t
}

/// Format a speedup ratio between two timings (a vs b: how much faster is b).
pub fn speedup(a: Timing, b: Timing) -> f64 {
    a.min.as_secs_f64() / b.min.as_secs_f64().max(1e-12)
}

//! # critter-algs
//!
//! From-scratch Rust implementations of the four state-of-the-art
//! distributed-memory factorization workloads the paper autotunes (§V),
//! running on the `critter-sim` substrate through the `critter-core`
//! interception layer:
//!
//! * [`capital`] — Capital's recursive bulk-synchronous Cholesky on a
//!   partially-replicated cyclic distribution over a 3D processor grid, with
//!   the three base-case strategies of §V-A;
//! * [`slate_chol`] — a SLATE-style task-based tile Cholesky on a 2D
//!   block-cyclic distribution with lookahead pipelining and nonblocking
//!   point-to-point communication;
//! * [`candmc_qr`] — a CANDMC-style bulk-synchronous 2D QR with TSQR panel
//!   factorization (binary `tpqrt` reduction tree) and block-cyclic trailing
//!   updates;
//! * [`slate_qr`] — a SLATE-style tile QR with flat-tree `tpqrt` chains,
//!   `tpmqrt` trailing updates, and inner panel blocking `w`.
//!
//! A fifth workload, [`summa25d`], demonstrates the §VIII claim that the
//! techniques extend beyond the paper's case studies: 2.5D matrix
//! multiplication with a tunable replication depth.
//!
//! Every algorithm operates on real `f64` matrix data (`critter-dla`
//! kernels), so full-execution runs are verified numerically; under selective
//! execution the numerics are knowingly corrupted, exactly as in the paper.

#![deny(missing_docs)]

pub mod candmc_qr;
pub mod capital;
pub mod grid;
pub mod slate_chol;
pub mod slate_qr;
pub mod summa25d;
pub mod workload;

pub use workload::{Workload, WorkloadOutput};

//! SLATE-style task-based tile Cholesky (§V-A).
//!
//! The matrix is partitioned into `t×t` tiles, block-cyclically distributed
//! over a 2D `p_r×p_c` grid. Each panel step runs `potrf` on the diagonal
//! tile, `trsm` on the tiles below it, and `syrk`/`gemm` updates on the
//! trailing matrix; tiles move between ranks with **nonblocking point-to-point
//! messages** (`isend`/`recv`, the routines the paper lists for SLATE) rather
//! than collectives. **Lookahead pipelining** of tunable depth reorders the
//! trailing update so the next panel's column is updated — and the next panel
//! factored and distributed — before the bulk of the trailing update, letting
//! the panel chain run ahead of the updates exactly as SLATE's task scheduler
//! does.
//!
//! Tunables (the §V-C configuration space): tile size `t` and lookahead depth.

use std::collections::HashMap;

use critter_core::{ComputeOp, CritterEnv};
use critter_dla::{flops, gemm, potrf, syrk, trsm, Matrix, Side, Trans, Uplo};
use critter_sim::{Communicator, ReduceOp};

use crate::workload::{Workload, WorkloadOutput};

/// One SLATE Cholesky configuration.
#[derive(Debug, Clone)]
pub struct SlateCholesky {
    /// Matrix dimension.
    pub n: usize,
    /// Tile size `t` (the last tile may be smaller).
    pub tile: usize,
    /// Lookahead depth (0 = none, 1 = one panel ahead).
    pub lookahead: usize,
    /// Grid rows.
    pub pr: usize,
    /// Grid columns.
    pub pc: usize,
}

impl SlateCholesky {
    /// The SPD element function shared with the other Cholesky workload.
    pub fn element(n: usize) -> impl Fn(usize, usize) -> f64 {
        crate::capital::CapitalCholesky::element(n)
    }

    fn nt(&self) -> usize {
        self.n.div_ceil(self.tile)
    }

    fn tdim(&self, i: usize) -> usize {
        self.tile.min(self.n - i * self.tile)
    }

    fn owner(&self, i: usize, j: usize) -> usize {
        (i % self.pr) * self.pc + (j % self.pc)
    }
}

/// Per-run state of one rank.
struct TileRun<'w> {
    w: &'w SlateCholesky,
    rank: usize,
    world: Communicator,
    /// Owned tiles (lower triangle only), factored in place into L.
    tiles: HashMap<(usize, usize), Matrix>,
    /// Panel tiles received (or computed) this sweep, keyed `(i, k)`.
    cache: HashMap<(usize, usize), Matrix>,
    /// Deferred nonblocking-send completions (drained at the end; receivers
    /// match them on the fly, so deferring costs nothing and cannot deadlock).
    pending: Vec<critter_core::env::CritterRequest>,
}

impl<'w> TileRun<'w> {
    fn own(&self, i: usize, j: usize) -> bool {
        self.w.owner(i, j) == self.rank
    }

    fn tag(k: usize, i: usize, nt: usize, kind: u64) -> u64 {
        ((k * nt + i) as u64) * 2 + kind
    }

    /// Ranks that need panel tile `L(i,k)` for trailing updates.
    fn panel_receivers(&self, i: usize, k: usize) -> Vec<usize> {
        let w = self.w;
        let nt = w.nt();
        let mut set = std::collections::BTreeSet::new();
        // Left operand of A(i,j) for k < j ≤ i.
        for j in (k + 1)..=i {
            set.insert(w.owner(i, j));
        }
        // Right (transposed) operand of A(i2, i) for i ≤ i2 < nt.
        for i2 in i..nt {
            set.insert(w.owner(i2, i));
        }
        set.remove(&w.owner(i, k));
        set.into_iter().collect()
    }

    /// Factor panel `k`: potrf the diagonal tile, trsm the column below it,
    /// and distribute the resulting panel tiles to their consumers.
    fn factor_panel(&mut self, env: &mut CritterEnv, k: usize) {
        let w = self.w;
        let nt = w.nt();
        let tk = w.tdim(k);
        // Diagonal factorization.
        if self.own(k, k) {
            let tile = self.tiles.get_mut(&(k, k)).expect("diagonal tile");
            env.kernel(ComputeOp::Potrf, tk, 0, 0, flops::potrf(tk), || {
                if potrf(tile).is_err() {
                    *tile = Matrix::identity(tk);
                }
            });
            // Send L(k,k) to the trsm holders below.
            let mut dests = std::collections::BTreeSet::new();
            for i in (k + 1)..nt {
                dests.insert(w.owner(i, k));
            }
            dests.remove(&self.rank);
            let data = self.tiles[&(k, k)].data().to_vec();
            for d in dests {
                let r = env.isend(&self.world, d, Self::tag(k, k, nt, 1), data.clone());
                self.pending.push(r);
            }
        }
        // Column trsm.
        let my_panel: Vec<usize> = ((k + 1)..nt).filter(|&i| self.own(i, k)).collect();
        if !my_panel.is_empty() {
            let kk = if self.own(k, k) {
                self.tiles[&(k, k)].clone()
            } else {
                let data = env.recv(&self.world, w.owner(k, k), Self::tag(k, k, nt, 1), tk * tk);
                Matrix::from_column_major(tk, tk, data)
            };
            for &i in &my_panel {
                let ti = w.tdim(i);
                let tile = self.tiles.get_mut(&(i, k)).expect("panel tile");
                env.kernel(ComputeOp::Trsm, tk, ti, 0, flops::trsm(tk, ti), || {
                    // L(i,k) ← A(i,k) · L(k,k)⁻ᵀ.
                    if (0..tk).any(|d| kk[(d, d)] == 0.0) {
                        return;
                    }
                    trsm(Side::Right, Uplo::Lower, Trans::Yes, false, 1.0, &kk, tile);
                });
                // Distribute to consumers.
                let data = self.tiles[&(i, k)].data().to_vec();
                for d in self.panel_receivers(i, k) {
                    let r = env.isend(&self.world, d, Self::tag(k, i, nt, 0), data.clone());
                    self.pending.push(r);
                }
            }
        }
    }

    /// Get panel tile `L(i,k)` (local, cached, or received from its owner).
    fn panel_tile(&mut self, env: &mut CritterEnv, i: usize, k: usize) -> Matrix {
        let w = self.w;
        if self.own(i, k) {
            return self.tiles[&(i, k)].clone();
        }
        if let Some(t) = self.cache.get(&(i, k)) {
            return t.clone();
        }
        let (ti, tk) = (w.tdim(i), w.tdim(k));
        let nt = w.nt();
        let data = env.recv(&self.world, w.owner(i, k), Self::tag(k, i, nt, 0), ti * tk);
        let m = Matrix::from_column_major(ti, tk, data);
        self.cache.insert((i, k), m.clone());
        m
    }

    /// Apply the step-`k` update to owned trailing tiles in columns `cols`.
    fn update(&mut self, env: &mut CritterEnv, k: usize, cols: impl Iterator<Item = usize>) {
        let w = self.w;
        let nt = w.nt();
        for j in cols {
            for i in j..nt {
                if !self.own(i, j) {
                    continue;
                }
                let ljk = self.panel_tile(env, j, k);
                let (ti, tj, tk) = (w.tdim(i), w.tdim(j), w.tdim(k));
                if i == j {
                    let tile = self.tiles.get_mut(&(i, i)).expect("diag tile");
                    env.kernel(ComputeOp::Syrk, ti, tk, 0, flops::syrk(ti, tk), || {
                        syrk(Uplo::Lower, Trans::No, -1.0, &ljk, 1.0, tile);
                    });
                } else {
                    let lik = self.panel_tile(env, i, k);
                    let tile = self.tiles.get_mut(&(i, j)).expect("trailing tile");
                    env.kernel(ComputeOp::Gemm, ti, tj, tk, flops::gemm(ti, tj, tk), || {
                        gemm(Trans::No, Trans::Yes, -1.0, &lik, &ljk, 1.0, tile);
                    });
                }
            }
        }
    }
}

impl Workload for SlateCholesky {
    fn name(&self) -> String {
        format!(
            "slate-chol[n={},t={},la={},grid={}x{}]",
            self.n, self.tile, self.lookahead, self.pr, self.pc
        )
    }

    fn ranks(&self) -> usize {
        self.pr * self.pc
    }

    fn run(&self, env: &mut CritterEnv, verify: bool) -> WorkloadOutput {
        let nt = self.nt();
        let rank = env.rank();
        assert_eq!(env.size(), self.ranks(), "rank count mismatch");
        let el = Self::element(self.n);
        // Materialize owned lower-triangle tiles.
        let mut tiles = HashMap::new();
        for j in 0..nt {
            for i in j..nt {
                if self.owner(i, j) == rank {
                    let (ti, tj) = (self.tdim(i), self.tdim(j));
                    let mut t = Matrix::zeros(ti, tj);
                    for c in 0..tj {
                        for r in 0..ti {
                            t[(r, c)] = el(i * self.tile + r, j * self.tile + c);
                        }
                    }
                    tiles.insert((i, j), t);
                }
            }
        }
        let world = env.world();
        let mut run =
            TileRun { w: self, rank, world, tiles, cache: HashMap::new(), pending: Vec::new() };

        if self.lookahead == 0 {
            for k in 0..nt {
                run.factor_panel(env, k);
                run.update(env, k, (k + 1)..nt);
                run.cache.retain(|&(_, kk), _| kk != k);
            }
        } else {
            // Lookahead: update the next panel's column first, factor and
            // distribute the next panel, then finish the trailing update.
            run.factor_panel(env, 0);
            for k in 0..nt {
                if k + 1 < nt {
                    run.update(env, k, std::iter::once(k + 1));
                    run.factor_panel(env, k + 1);
                    run.update(env, k, (k + 2)..nt);
                } else {
                    run.update(env, k, (k + 1)..nt);
                }
                run.cache.retain(|&(_, kk), _| kk != k);
            }
        }
        // Drain deferred nonblocking-send completions.
        for r in run.pending.drain(..) {
            env.wait(r);
        }

        if !verify {
            return WorkloadOutput::default();
        }
        // Reference factor computed locally from the shared element formula;
        // compare owned tiles (test sizes are small).
        let mut reference = Matrix::zeros(self.n, self.n);
        for j in 0..self.n {
            for i in j..self.n {
                let v = el(i, j);
                reference[(i, j)] = v;
                reference[(j, i)] = v;
            }
        }
        potrf(&mut reference).expect("reference SPD");
        let mut max_err: f64 = 0.0;
        for (&(i, j), t) in &run.tiles {
            for c in 0..t.cols() {
                for r in 0..t.rows() {
                    let (gi, gj) = (i * self.tile + r, j * self.tile + c);
                    if gi >= gj {
                        max_err = max_err.max((t[(r, c)] - reference[(gi, gj)]).abs());
                    }
                }
            }
        }
        let world = env.world();
        let global = env.allreduce(&world, ReduceOp::Max, &[max_err]);
        WorkloadOutput { residual: Some(global[0] / reference.norm_fro()), residual2: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_core::{CritterConfig, ExecutionPolicy, KernelStore};
    use critter_machine::MachineModel;
    use critter_sim::{run_simulation, SimConfig};

    fn run_chol(n: usize, tile: usize, la: usize, pr: usize, pc: usize) -> Vec<WorkloadOutput> {
        let w = SlateCholesky { n, tile, lookahead: la, pr, pc };
        let p = w.ranks();
        let machine = MachineModel::test_exact(p).shared();
        run_simulation(SimConfig::new(p), machine, move |ctx| {
            let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
            let out = w.run(&mut env, true);
            let _ = env.finish();
            out
        })
        .outputs
    }

    #[test]
    fn factors_correctly_no_lookahead() {
        for out in run_chol(48, 16, 0, 2, 2) {
            assert!(out.residual.unwrap() < 1e-10, "residual {:?}", out.residual);
        }
    }

    #[test]
    fn factors_correctly_with_lookahead() {
        for out in run_chol(48, 16, 1, 2, 2) {
            assert!(out.residual.unwrap() < 1e-10);
        }
    }

    #[test]
    fn ragged_last_tile() {
        for out in run_chol(40, 16, 0, 2, 2) {
            assert!(out.residual.unwrap() < 1e-10);
        }
    }

    #[test]
    fn rectangular_grid() {
        for out in run_chol(48, 12, 1, 4, 2) {
            assert!(out.residual.unwrap() < 1e-10);
        }
    }

    #[test]
    fn single_tile_degenerate() {
        for out in run_chol(16, 16, 0, 2, 2) {
            assert!(out.residual.unwrap() < 1e-10);
        }
    }

    #[test]
    fn lookahead_shortens_critical_path() {
        // With lookahead the panel chain overlaps trailing updates, so the
        // simulated makespan should not be worse (and typically better).
        let time = |la: usize| {
            let w = SlateCholesky { n: 96, tile: 16, lookahead: la, pr: 2, pc: 2 };
            let machine = MachineModel::test_exact(4).shared();
            run_simulation(SimConfig::new(4), machine, move |ctx| {
                let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
                w.run(&mut env, false);
                let _ = env.finish();
            })
            .elapsed()
        };
        let t0 = time(0);
        let t1 = time(1);
        assert!(t1 <= t0 * 1.02, "lookahead {t1} vs none {t0}");
    }

    #[test]
    fn selective_execution_completes() {
        let w = SlateCholesky { n: 64, tile: 16, lookahead: 1, pr: 2, pc: 2 };
        let machine = MachineModel::test_noisy(4, 9).shared();
        let report = run_simulation(SimConfig::new(4), machine, move |ctx| {
            let mut env = CritterEnv::new(
                ctx,
                CritterConfig::new(ExecutionPolicy::ConditionalExecution, 1.0),
                KernelStore::new(),
            );
            w.run(&mut env, false);
            let (rep, _) = env.finish();
            rep
        });
        let skipped: u64 = report.outputs.iter().map(|r| r.kernels_skipped).sum();
        assert!(skipped > 0, "tile algorithm must produce skips at loose ε");
    }
}

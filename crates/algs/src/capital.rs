//! Capital's recursive bulk-synchronous Cholesky on a 3D processor grid
//! (§V-A; Hutter's `capital` library, the key subroutine of the
//! communication-avoiding CholeskyQR2 of \[14\]).
//!
//! The algorithm applies Tiskin's recursive block 2×2 splitting:
//!
//! ```text
//! chol(A) :  L11 = chol(A11)
//!            L21 = A21·L11⁻ᵀ                (triangular product, 3D gemm)
//!            L22 = chol(A22 − L21·L21ᵀ)     (syrk, 3D gemm)
//!            L⁻¹ = [[L11⁻¹, 0], [S21, L22⁻¹]],  S21 = −L22⁻¹·L21·L11⁻¹
//! ```
//!
//! until the sub-problem dimension reaches the tunable **block size** `b`,
//! where one of three **base-case strategies** solves it with sequential
//! LAPACK (`potrf` + `trtri`):
//!
//! 1. gather onto one processor of one grid layer, factor there, scatter
//!    across the layer, broadcast along the grid depth;
//! 2. all-gather within *every* layer and factor redundantly everywhere;
//! 3. all-gather within a *single* layer, factor redundantly across it, and
//!    broadcast along the depth.
//!
//! The trade-off (§V-A BSP cost): latency `α·n/b` falls with larger `b`,
//! bandwidth `β·(n²/p^{2/3} + nb)` and computation `γ·(n³/p + nb²)` rise —
//! which is precisely what makes the block size worth autotuning.

use critter_core::{ComputeOp, CritterEnv};
use critter_dla::{flops, potrf, trtri, Matrix};

use crate::grid::{gemm3d, transpose3d, DistMat, Grid3D, KERNEL_LAYOUT};
use crate::workload::{Workload, WorkloadOutput};

/// Tag used by the distributed transposes of the recursion.
const TAG: u64 = 11;

/// One Capital Cholesky configuration.
#[derive(Debug, Clone)]
pub struct CapitalCholesky {
    /// Matrix dimension.
    pub n: usize,
    /// Base-case block size `b`.
    pub block: usize,
    /// Base-case strategy (1, 2, or 3).
    pub strategy: u8,
    /// Rank count (must be a perfect cube).
    pub ranks: usize,
}

impl CapitalCholesky {
    /// The diagonally-dominant SPD test matrix used by all runs
    /// (`A_ij = 1/(1+|i−j|) + 2n·δ_ij`): generated in place on every rank, so
    /// no input distribution step is needed beyond the charged layout kernel.
    pub fn element(n: usize) -> impl Fn(usize, usize) -> f64 {
        move |i, j| {
            let base = 1.0 / (1.0 + (i as f64 - j as f64).abs());
            if i == j {
                base + 2.0 * n as f64
            } else {
                base
            }
        }
    }

    /// Factor `a` recursively; returns `(L, L⁻¹)` distributed.
    fn chol3d(&self, env: &mut CritterEnv, grid: &Grid3D, a: &DistMat) -> (DistMat, DistMat) {
        let n = a.rows;
        let c = grid.c;
        if n <= self.block.max(c) || !(n / 2).is_multiple_of(c) {
            return self.base_case(env, grid, a);
        }
        let n1 = n / 2;
        let n2 = n - n1;
        let a11 = a.sub(grid, 0, 0, n1, n1);
        let a21 = a.sub(grid, n1, 0, n2, n1);
        let a22 = a.sub(grid, n1, n1, n2, n2);

        let (l11, l11inv) = self.chol3d(env, grid, &a11);

        // L21 = A21 · L11⁻ᵀ (distributed triangular product).
        let l11inv_t = transpose3d(env, grid, &l11inv, TAG);
        let mut l21 = DistMat::zeros(grid, n2, n1);
        gemm3d(env, grid, ComputeOp::Trmm, 1.0, &a21, &l11inv_t, 0.0, &mut l21);

        // A22 ← A22 − L21·L21ᵀ (symmetric rank-k update).
        let l21t = transpose3d(env, grid, &l21, TAG);
        let mut a22u = a22;
        gemm3d(env, grid, ComputeOp::Syrk, -1.0, &l21, &l21t, 1.0, &mut a22u);

        let (l22, l22inv) = self.chol3d(env, grid, &a22u);

        // S21 = −L22⁻¹ · L21 · L11⁻¹ (two triangular products).
        let mut t1 = DistMat::zeros(grid, n2, n1);
        gemm3d(env, grid, ComputeOp::Trmm, 1.0, &l22inv, &l21, 0.0, &mut t1);
        let mut s21 = DistMat::zeros(grid, n2, n1);
        gemm3d(env, grid, ComputeOp::Trmm, -1.0, &t1, &l11inv, 0.0, &mut s21);

        let mut l = DistMat::zeros(grid, n, n);
        l.set_sub(grid, 0, 0, &l11);
        l.set_sub(grid, n1, 0, &l21);
        l.set_sub(grid, n1, n1, &l22);
        let mut linv = DistMat::zeros(grid, n, n);
        linv.set_sub(grid, 0, 0, &l11inv);
        linv.set_sub(grid, n1, 0, &s21);
        linv.set_sub(grid, n1, n1, &l22inv);
        (l, linv)
    }

    /// Factor a base-case block with `potrf` + `trtri` under the configured
    /// distribution strategy.
    fn base_case(&self, env: &mut CritterEnv, grid: &Grid3D, a: &DistMat) -> (DistMat, DistMat) {
        let n = a.rows;
        let c = grid.c;
        let (_, _, k) = grid.coords;
        let piece = (n / c) * (n / c);

        // Run potrf+trtri on a global copy `g`, tolerating garbage inputs
        // under selective execution (the paper resets inputs before LAPACK
        // calls for the same reason).
        let factor = |env: &mut CritterEnv, g: &Matrix| -> (Matrix, Matrix) {
            let mut l = g.clone();
            env.kernel(ComputeOp::Potrf, n, 0, 0, flops::potrf(n), || {
                if potrf(&mut l).is_err() {
                    l = Matrix::identity(n);
                }
            });
            let mut linv = l.clone();
            env.kernel(ComputeOp::Trtri, n, 0, 0, flops::trtri(n), || {
                if (0..n).any(|d| linv[(d, d)] == 0.0) {
                    linv = Matrix::identity(n);
                } else {
                    trtri(&mut linv);
                }
            });
            (l, linv)
        };

        match self.strategy {
            2 => {
                // All-gather within every layer; factor redundantly everywhere.
                let g = a.to_global(env, grid);
                let (l, linv) = factor(env, &g);
                env.custom_kernel(KERNEL_LAYOUT, piece, piece as f64, || {});
                (DistMat::from_global(grid, &l), DistMat::from_global(grid, &linv))
            }
            3 => {
                // All-gather and factor within layer 0 only, then broadcast
                // the cyclic pieces along the grid depth.
                let (mut lp, mut lip) = if k == 0 {
                    let g = a.to_global(env, grid);
                    let (l, linv) = factor(env, &g);
                    env.custom_kernel(KERNEL_LAYOUT, piece, piece as f64, || {});
                    (
                        DistMat::from_global(grid, &l).local.into_data(),
                        DistMat::from_global(grid, &linv).local.into_data(),
                    )
                } else {
                    (vec![0.0; piece], vec![0.0; piece])
                };
                env.bcast(&grid.comm_k, 0, &mut lp);
                env.bcast(&grid.comm_k, 0, &mut lip);
                (
                    DistMat {
                        rows: n,
                        cols: n,
                        local: Matrix::from_column_major(n / c, n / c, lp),
                    },
                    DistMat {
                        rows: n,
                        cols: n,
                        local: Matrix::from_column_major(n / c, n / c, lip),
                    },
                )
            }
            1 => {
                // Gather onto layer 0's root, factor there, scatter across the
                // layer, broadcast along the depth.
                let (mut lp, mut lip);
                if k == 0 {
                    let gathered = env.gather(&grid.layer, 0, a.local.data());
                    let (lpieces, lipieces) = if let Some(chunks) = gathered {
                        // Root: assemble the global block from cyclic pieces.
                        let mut g = Matrix::zeros(n, n);
                        for (member, chunk) in chunks.chunks(piece).enumerate() {
                            let (mi, mj) = (member % c, member / c);
                            for lj in 0..n / c {
                                for li in 0..n / c {
                                    g[(mi + c * li, mj + c * lj)] = chunk[lj * (n / c) + li];
                                }
                            }
                        }
                        env.custom_kernel(KERNEL_LAYOUT, n * n, (n * n) as f64, || {});
                        let (l, linv) = factor(env, &g);
                        // Re-slice into per-member cyclic pieces, layer order.
                        let slice = |m: &Matrix| {
                            let mut out = Vec::with_capacity(n * n);
                            for member in 0..c * c {
                                let (mi, mj) = (member % c, member / c);
                                for lj in 0..n / c {
                                    for li in 0..n / c {
                                        out.push(m[(mi + c * li, mj + c * lj)]);
                                    }
                                }
                            }
                            out
                        };
                        (slice(&l), slice(&linv))
                    } else {
                        (Vec::new(), Vec::new())
                    };
                    lp = env.scatter(&grid.layer, 0, &lpieces, piece);
                    lip = env.scatter(&grid.layer, 0, &lipieces, piece);
                } else {
                    lp = vec![0.0; piece];
                    lip = vec![0.0; piece];
                }
                env.bcast(&grid.comm_k, 0, &mut lp);
                env.bcast(&grid.comm_k, 0, &mut lip);
                (
                    DistMat {
                        rows: n,
                        cols: n,
                        local: Matrix::from_column_major(n / c, n / c, lp),
                    },
                    DistMat {
                        rows: n,
                        cols: n,
                        local: Matrix::from_column_major(n / c, n / c, lip),
                    },
                )
            }
            s => panic!("unknown base-case strategy {s} (valid: 1, 2, 3)"),
        }
    }
}

impl Workload for CapitalCholesky {
    fn name(&self) -> String {
        format!("capital-chol[n={},b={},strat={}]", self.n, self.block, self.strategy)
    }

    fn ranks(&self) -> usize {
        self.ranks
    }

    fn run(&self, env: &mut CritterEnv, verify: bool) -> WorkloadOutput {
        let grid = Grid3D::new(env);
        let n = self.n;
        let words = (n / grid.c) * (n / grid.c);
        // Input generation / layout (the block-to-cyclic kernel Capital
        // intercepts via preprocessor directives).
        env.custom_kernel(KERNEL_LAYOUT, words, words as f64, || {});
        let a = DistMat::from_fn(&grid, n, n, Self::element(n));

        let (l, linv) = self.chol3d(env, &grid, &a);

        if !verify {
            return WorkloadOutput::default();
        }
        // ‖L·Lᵀ − A‖_F / ‖A‖_F, computed distributed.
        let lt = transpose3d(env, &grid, &l, TAG);
        let mut resid = a.clone();
        gemm3d(env, &grid, ComputeOp::Gemm, 1.0, &l, &lt, -1.0, &mut resid);
        let r = resid.norm_fro(env, &grid) / a.norm_fro(env, &grid);
        // ‖L·L⁻¹ − I‖_F / √n.
        let mut ident = DistMat::from_fn(&grid, n, n, |i, j| if i == j { -1.0 } else { 0.0 });
        gemm3d(env, &grid, ComputeOp::Gemm, 1.0, &l, &linv, 1.0, &mut ident);
        let r2 = ident.norm_fro(env, &grid) / (n as f64).sqrt();
        WorkloadOutput { residual: Some(r), residual2: Some(r2) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_core::{CritterConfig, ExecutionPolicy, KernelStore};
    use critter_machine::MachineModel;
    use critter_sim::{run_simulation, SimConfig};

    fn run_capital(n: usize, block: usize, strategy: u8) -> Vec<WorkloadOutput> {
        let p = 8;
        let w = CapitalCholesky { n, block, strategy, ranks: p };
        let machine = MachineModel::test_exact(p).shared();
        run_simulation(SimConfig::new(p), machine, move |ctx| {
            let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
            let out = w.run(&mut env, true);
            let _ = env.finish();
            out
        })
        .outputs
    }

    #[test]
    fn strategy2_factors_correctly() {
        for out in run_capital(16, 4, 2) {
            assert!(out.residual.unwrap() < 1e-10, "residual {:?}", out.residual);
            assert!(out.residual2.unwrap() < 1e-10);
        }
    }

    #[test]
    fn strategy3_factors_correctly() {
        for out in run_capital(16, 4, 3) {
            assert!(out.residual.unwrap() < 1e-10);
            assert!(out.residual2.unwrap() < 1e-10);
        }
    }

    #[test]
    fn strategy1_factors_correctly() {
        for out in run_capital(16, 4, 1) {
            assert!(out.residual.unwrap() < 1e-10);
            assert!(out.residual2.unwrap() < 1e-10);
        }
    }

    #[test]
    fn single_level_recursion() {
        // b = n/2: exactly one recursive split.
        for out in run_capital(16, 8, 2) {
            assert!(out.residual.unwrap() < 1e-10);
        }
    }

    #[test]
    fn no_recursion_pure_base_case() {
        for out in run_capital(8, 8, 2) {
            assert!(out.residual.unwrap() < 1e-10);
        }
    }

    #[test]
    fn block_size_changes_kernel_mix() {
        // Smaller blocks → more, smaller base-case kernels → more supersteps.
        let p = 8;
        let machine = MachineModel::test_exact(p).shared();
        let run = |block: usize| {
            let w = CapitalCholesky { n: 32, block, strategy: 2, ranks: p };
            run_simulation(SimConfig::new(p), machine.clone(), move |ctx| {
                let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
                w.run(&mut env, false);
                let (rep, _) = env.finish();
                rep
            })
        };
        let small = run(4);
        let large = run(16);
        assert!(
            small.outputs[0].path.syncs > large.outputs[0].path.syncs,
            "smaller blocks must synchronize more"
        );
    }

    #[test]
    fn selective_execution_runs_to_completion() {
        // Numerics are garbage by design, but the run must not deadlock or
        // panic, and must skip kernels.
        let p = 8;
        let w = CapitalCholesky { n: 16, block: 4, strategy: 2, ranks: p };
        let machine = MachineModel::test_noisy(p, 5).shared();
        let report = run_simulation(SimConfig::new(p), machine, move |ctx| {
            let mut env = CritterEnv::new(
                ctx,
                CritterConfig::new(ExecutionPolicy::ConditionalExecution, 1.0),
                KernelStore::new(),
            );
            w.run(&mut env, false);
            let (rep, _) = env.finish();
            rep
        });
        let total_skipped: u64 = report.outputs.iter().map(|r| r.kernels_skipped).sum();
        assert!(total_skipped > 0, "loose tolerance must produce skips");
    }
}

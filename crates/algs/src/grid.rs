//! 3D processor grid, cyclic matrix distribution, and communication-efficient
//! distributed matrix multiplication (the substrate of Capital's Cholesky).
//!
//! A `c×c×c` grid holds `p = c³` ranks. Rank `r` has coordinates
//! `(i, j, k) = (r % c, (r/c) % c, r/c²)`. Each *layer* (fixed `k`) is a 2D
//! `c×c` grid over which matrices are distributed **element-cyclically**:
//! global element `(gi, gj)` lives on layer processor `(gi mod c, gj mod c)`
//! at local index `(gi div c, gj div c)` — and is replicated across all `c`
//! layers (the "partially-replicated cyclic" layout of §V-A).
//!
//! [`gemm3d`] is the 3D SUMMA of \[19\]–\[22\]: each layer computes the cyclic
//! k-panel of the summation index matching its depth coordinate (one
//! broadcast along each of two grid dimensions), and partial results are
//! combined by a reduction along the third dimension — "broadcasts along two
//! dimensions of the processor grid, and a reduction along the third".

use critter_core::{ComputeOp, CritterEnv};
use critter_dla::{flops, gemm, Matrix, Trans};
use critter_sim::{Communicator, ReduceOp};

/// Custom-kernel id for the block-to-cyclic style data-layout kernels the
/// paper intercepts via preprocessor directives in Capital.
pub const KERNEL_LAYOUT: u32 = 1;
/// Custom-kernel id for distributed transposes.
pub const KERNEL_TRANSPOSE: u32 = 2;

/// A `c×c×c` processor grid with its fiber communicators.
pub struct Grid3D {
    /// Grid edge length (`p = c³`).
    pub c: usize,
    /// This rank's `(i, j, k)` coordinates.
    pub coords: (usize, usize, usize),
    /// Fiber varying `i` (fixed `j, k`); communicator rank equals `i`.
    pub comm_i: Communicator,
    /// Fiber varying `j` (fixed `i, k`); communicator rank equals `j`.
    pub comm_j: Communicator,
    /// Fiber varying `k` (fixed `i, j`); communicator rank equals `k`.
    pub comm_k: Communicator,
    /// This rank's layer (fixed `k`, `c²` ranks); rank equals `i + c·j`.
    pub layer: Communicator,
}

impl Grid3D {
    /// Build the grid communicators by splitting the world communicator.
    /// Panics unless the world size is a perfect cube.
    pub fn new(env: &mut CritterEnv) -> Self {
        let p = env.size();
        let c = (p as f64).cbrt().round() as usize;
        assert_eq!(c * c * c, p, "Grid3D requires a cubic rank count, got {p}");
        let r = env.rank();
        let (i, j, k) = (r % c, (r / c) % c, r / (c * c));
        let world = env.world();
        let comm_i = env.split(&world, (j + c * k) as i64, r as i64).expect("comm_i");
        let comm_j = env.split(&world, (i + c * k) as i64, r as i64).expect("comm_j");
        let comm_k = env.split(&world, (i + c * j) as i64, r as i64).expect("comm_k");
        let layer = env.split(&world, k as i64, r as i64).expect("layer");
        debug_assert_eq!(comm_i.rank(), i);
        debug_assert_eq!(comm_j.rank(), j);
        debug_assert_eq!(comm_k.rank(), k);
        debug_assert_eq!(layer.rank(), i + c * j);
        Grid3D { c, coords: (i, j, k), comm_i, comm_j, comm_k, layer }
    }
}

/// A matrix distributed element-cyclically over each layer of a [`Grid3D`]
/// and replicated across layers.
#[derive(Debug, Clone)]
pub struct DistMat {
    /// Global row count (divisible by `c`).
    pub rows: usize,
    /// Global column count (divisible by `c`).
    pub cols: usize,
    /// This rank's local `(rows/c) × (cols/c)` block.
    pub local: Matrix,
}

impl DistMat {
    /// Zero matrix.
    pub fn zeros(grid: &Grid3D, rows: usize, cols: usize) -> Self {
        let c = grid.c;
        assert!(
            rows.is_multiple_of(c) && cols.is_multiple_of(c),
            "dims must be divisible by the grid edge"
        );
        DistMat { rows, cols, local: Matrix::zeros(rows / c, cols / c) }
    }

    /// Build from a global element function (every rank fills its cyclic
    /// part; no communication).
    pub fn from_fn(
        grid: &Grid3D,
        rows: usize,
        cols: usize,
        f: impl Fn(usize, usize) -> f64,
    ) -> Self {
        let mut m = DistMat::zeros(grid, rows, cols);
        let (i, j, _) = grid.coords;
        let c = grid.c;
        for lj in 0..cols / c {
            for li in 0..rows / c {
                m.local[(li, lj)] = f(i + c * li, j + c * lj);
            }
        }
        m
    }

    /// Copy of the sub-matrix starting at global `(i0, j0)` with shape
    /// `(r, cc)`. All of `i0, j0, r, cc` must be divisible by the grid edge,
    /// which the recursive algorithm guarantees by construction.
    pub fn sub(&self, grid: &Grid3D, i0: usize, j0: usize, r: usize, cc: usize) -> DistMat {
        let c = grid.c;
        assert!(
            i0.is_multiple_of(c)
                && j0.is_multiple_of(c)
                && r.is_multiple_of(c)
                && cc.is_multiple_of(c),
            "unaligned submatrix"
        );
        DistMat { rows: r, cols: cc, local: self.local.sub(i0 / c, j0 / c, r / c, cc / c) }
    }

    /// Write `block` at global `(i0, j0)`.
    pub fn set_sub(&mut self, grid: &Grid3D, i0: usize, j0: usize, block: &DistMat) {
        let c = grid.c;
        assert!(i0.is_multiple_of(c) && j0.is_multiple_of(c), "unaligned submatrix");
        self.local.set_sub(i0 / c, j0 / c, &block.local);
    }

    /// Assemble the full global matrix on every rank (test/verification
    /// helper; uses an allgather over the layer).
    pub fn to_global(&self, env: &mut CritterEnv, grid: &Grid3D) -> Matrix {
        let c = grid.c;
        let all = env.allgather(&grid.layer, self.local.data());
        let lr = self.rows / c;
        let lc = self.cols / c;
        let mut g = Matrix::zeros(self.rows, self.cols);
        for (member, chunk) in all.chunks(lr * lc).enumerate() {
            let (mi, mj) = (member % c, member / c);
            let local = Matrix::from_column_major(lr, lc, chunk.to_vec());
            for lj in 0..lc {
                for li in 0..lr {
                    g[(mi + c * li, mj + c * lj)] = local[(li, lj)];
                }
            }
        }
        g
    }

    /// Scatter a full global matrix from the layer's rank-0 processor into
    /// cyclic layout (test helper / base-case redistribution): here realized
    /// locally from a shared global copy.
    pub fn from_global(grid: &Grid3D, g: &Matrix) -> DistMat {
        let mut m = DistMat::zeros(grid, g.rows(), g.cols());
        let (i, j, _) = grid.coords;
        let c = grid.c;
        for lj in 0..g.cols() / c {
            for li in 0..g.rows() / c {
                m.local[(li, lj)] = g[(i + c * li, j + c * lj)];
            }
        }
        m
    }

    /// Frobenius norm of the distributed matrix (allreduce over the layer).
    pub fn norm_fro(&self, env: &mut CritterEnv, grid: &Grid3D) -> f64 {
        let local: f64 = self.local.data().iter().map(|x| x * x).sum();
        env.allreduce(&grid.layer, ReduceOp::Sum, &[local])[0].sqrt()
    }
}

/// 3D SUMMA: `C ← α·op(A)·op(B) + β·C`. `label` selects the BLAS routine the
/// local kernel is profiled as (`Gemm`, `Trmm`, `Syrk` — the distributed
/// triangular products of Capital's recursion are `trmm`s whose local blocks
/// we compute densely).
#[allow(clippy::too_many_arguments)]
pub fn gemm3d(
    env: &mut CritterEnv,
    grid: &Grid3D,
    label: ComputeOp,
    alpha: f64,
    a: &DistMat,
    b: &DistMat,
    beta: f64,
    c_out: &mut DistMat,
) {
    let c = grid.c;
    let (_, j, k) = grid.coords;
    let (m, kk) = (a.rows, a.cols);
    let n = b.cols;
    assert_eq!(b.rows, kk, "gemm3d inner dims");
    assert_eq!(c_out.rows, m, "gemm3d C rows");
    assert_eq!(c_out.cols, n, "gemm3d C cols");
    let s = k; // the SUMMA step this layer performs

    // A panel: global columns ≡ s (mod c), held by layer column j = s.
    let (lm, lk, ln) = (m / c, kk / c, n / c);
    let mut a_panel = if j == s { a.local.data().to_vec() } else { vec![0.0; lm * lk] };
    env.bcast(&grid.comm_j, s, &mut a_panel);

    // B panel: global rows ≡ s (mod c), held by layer row i = s.
    let (i, _, _) = grid.coords;
    let mut b_panel = if i == s { b.local.data().to_vec() } else { vec![0.0; lk * ln] };
    env.bcast(&grid.comm_i, s, &mut b_panel);

    // Local product for this layer's summation slice.
    let ap = Matrix::from_column_major(lm, lk, a_panel);
    let bp = Matrix::from_column_major(lk, ln, b_panel);
    let mut partial = Matrix::zeros(lm, ln);
    let fl = match label {
        ComputeOp::Syrk => flops::syrk(lm.max(ln), lk),
        ComputeOp::Trmm => flops::trmm(lk, lm.max(ln)),
        _ => flops::gemm(lm, ln, lk),
    };
    env.kernel(label, lm, ln, lk, fl, || {
        gemm(Trans::No, Trans::No, 1.0, &ap, &bp, 0.0, &mut partial);
    });

    // Depth reduction: sum the c layers' partial products.
    let summed = env.allreduce(&grid.comm_k, ReduceOp::Sum, partial.data());
    for (dst, &src) in c_out.local.data_mut().iter_mut().zip(summed.iter()) {
        *dst = beta * *dst + alpha * src;
    }
}

/// Distributed transpose within each layer: pairwise exchange between layer
/// processors `(i, j)` and `(j, i)`, local transpose on the diagonal.
pub fn transpose3d(env: &mut CritterEnv, grid: &Grid3D, a: &DistMat, tag: u64) -> DistMat {
    let c = grid.c;
    let (i, j, _) = grid.coords;
    let t_local = a.local.transposed();
    let local = if i == j {
        let words = t_local.rows() * t_local.cols();
        env.custom_kernel(KERNEL_TRANSPOSE, words, words as f64, || {});
        t_local
    } else {
        let partner = j + c * i; // layer rank of (j, i)
        let recv_words = (a.cols / c) * (a.rows / c);
        let data =
            env.sendrecv(&grid.layer, partner, tag, t_local.data(), partner, tag, recv_words);
        Matrix::from_column_major(a.cols / c, a.rows / c, data)
    };
    DistMat { rows: a.cols, cols: a.rows, local }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_core::{CritterConfig, KernelStore};
    use critter_machine::MachineModel;
    use critter_sim::{run_simulation, SimConfig};

    fn with_grid<R: Send>(f: impl Fn(&mut CritterEnv, &Grid3D) -> R + Send + Sync) -> Vec<R> {
        let p = 8; // 2x2x2
        let machine = MachineModel::test_exact(p).shared();
        run_simulation(SimConfig::new(p), machine, |ctx| {
            let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
            let grid = Grid3D::new(&mut env);
            let out = f(&mut env, &grid);
            let _ = env.finish();
            out
        })
        .outputs
    }

    #[test]
    fn grid_coordinates_and_comms() {
        let outs = with_grid(|env, grid| {
            (env.rank(), grid.coords, grid.comm_i.size(), grid.layer.size(), grid.comm_k.rank())
        });
        for (r, (i, j, k), ci, lay, kr) in outs {
            assert_eq!(r, i + 2 * j + 4 * k);
            assert_eq!(ci, 2);
            assert_eq!(lay, 4);
            assert_eq!(kr, k);
        }
    }

    #[test]
    fn from_fn_to_global_roundtrip() {
        let outs = with_grid(|env, grid| {
            let a = DistMat::from_fn(grid, 4, 6, |i, j| (i * 10 + j) as f64);
            let g = a.to_global(env, grid);
            let mut ok = true;
            for j in 0..6 {
                for i in 0..4 {
                    ok &= g[(i, j)] == (i * 10 + j) as f64;
                }
            }
            ok
        });
        assert!(outs.into_iter().all(|x| x));
    }

    #[test]
    fn gemm3d_matches_reference() {
        let outs = with_grid(|env, grid| {
            let a = DistMat::from_fn(grid, 4, 8, |i, j| ((i + 2 * j) % 5) as f64 - 2.0);
            let b = DistMat::from_fn(grid, 8, 6, |i, j| ((3 * i + j) % 7) as f64 - 3.0);
            let mut c = DistMat::zeros(grid, 4, 6);
            gemm3d(env, grid, ComputeOp::Gemm, 1.0, &a, &b, 0.0, &mut c);
            let (ga, gb, gc) =
                (a.to_global(env, grid), b.to_global(env, grid), c.to_global(env, grid));
            gc.max_abs_diff(&ga.matmul_ref(&gb))
        });
        for d in outs {
            assert!(d < 1e-12, "gemm3d error {d}");
        }
    }

    #[test]
    fn gemm3d_alpha_beta() {
        let outs = with_grid(|env, grid| {
            let a = DistMat::from_fn(grid, 4, 4, |i, j| (i + j) as f64);
            let b = DistMat::from_fn(grid, 4, 4, |i, j| (i as f64) - (j as f64));
            let mut c = DistMat::from_fn(grid, 4, 4, |i, j| (i * j) as f64);
            let c0 = c.to_global(env, grid);
            gemm3d(env, grid, ComputeOp::Gemm, 2.0, &a, &b, -1.0, &mut c);
            let (ga, gb, gc) =
                (a.to_global(env, grid), b.to_global(env, grid), c.to_global(env, grid));
            let mut expect = ga.matmul_ref(&gb);
            for j in 0..4 {
                for i in 0..4 {
                    expect[(i, j)] = 2.0 * expect[(i, j)] - c0[(i, j)];
                }
            }
            gc.max_abs_diff(&expect)
        });
        for d in outs {
            assert!(d < 1e-12);
        }
    }

    #[test]
    fn transpose3d_matches_reference() {
        let outs = with_grid(|env, grid| {
            let a = DistMat::from_fn(grid, 6, 4, |i, j| (7 * i + j) as f64);
            let t = transpose3d(env, grid, &a, 3);
            let (ga, gt) = (a.to_global(env, grid), t.to_global(env, grid));
            gt.max_abs_diff(&ga.transposed())
        });
        for d in outs {
            assert!(d < 1e-12);
        }
    }

    #[test]
    fn sub_set_sub_roundtrip() {
        let outs = with_grid(|env, grid| {
            let a = DistMat::from_fn(grid, 8, 8, |i, j| (i * 8 + j) as f64);
            let blk = a.sub(grid, 4, 2, 4, 4);
            let mut b = DistMat::zeros(grid, 8, 8);
            b.set_sub(grid, 4, 2, &blk);
            let (ga, gb) = (a.to_global(env, grid), b.to_global(env, grid));
            let mut ok = true;
            for j in 2..6 {
                for i in 4..8 {
                    ok &= ga[(i, j)] == gb[(i, j)];
                }
            }
            ok && gb[(0, 0)] == 0.0
        });
        assert!(outs.into_iter().all(|x| x));
    }

    #[test]
    fn norm_matches_global() {
        let outs = with_grid(|env, grid| {
            let a = DistMat::from_fn(grid, 4, 4, |i, j| (i + j) as f64);
            let n1 = a.norm_fro(env, grid);
            let n2 = a.to_global(env, grid).norm_fro();
            (n1 - n2).abs()
        });
        for d in outs {
            assert!(d < 1e-12);
        }
    }
}

//! CANDMC-style bulk-synchronous 2D QR factorization (§V-B).
//!
//! The `m×n` matrix is block-cyclically distributed with block size `b` over
//! a `p_r×p_c` grid. Panels are factored with **TSQR** \[23\]: local `geqrf`
//! on each grid-column rank's stacked rows followed by a binary reduction
//! tree of `tpqrt` combines over the grid column (`send`/`recv`, the blocking
//! routines CANDMC uses). The explicit panel orthogonal factor is then
//! reconstructed as `Q = P·R⁻¹` (`trtri` + triangular product) — a simpler
//! stand-in for CANDMC's LU-based Householder reconstruction \[1\] that invokes
//! the same BLAS/LAPACK kernel families (`geqrf`, `tpqrt`, `trtri`, `gemm`;
//! see DESIGN.md) — and the trailing matrix update
//! `A ← A − Q(QᵀA)` runs as two `gemm`s with a broadcast along grid rows and
//! a summation allreduce along grid columns.
//!
//! Tunables (§V-C): block size `b` and the grid shape `p_r×p_c`.

use critter_core::{ComputeOp, CritterEnv};
use critter_dla::{flops, gemm, geqrf, tpqrt, trtri, Matrix, Trans};
use critter_sim::ReduceOp;

use crate::workload::{Workload, WorkloadOutput};

/// One CANDMC QR configuration.
#[derive(Debug, Clone)]
pub struct CandmcQr {
    /// Row count (divisible by `b·p_r`).
    pub m: usize,
    /// Column count (divisible by `b·p_c`).
    pub n: usize,
    /// Block size `b`.
    pub block: usize,
    /// Grid rows (power of two, for the TSQR tree).
    pub pr: usize,
    /// Grid columns.
    pub pc: usize,
}

impl CandmcQr {
    /// Deterministic well-conditioned dense element function.
    pub fn element() -> impl Fn(usize, usize) -> f64 {
        |i, j| {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((j as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
            let h = (h ^ (h >> 31)).wrapping_mul(0x94d0_49bb_1331_11eb);
            ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5 + if i == j { 2.0 } else { 0.0 }
        }
    }

    fn validate(&self) {
        assert!(self.pr.is_power_of_two(), "TSQR tree needs a power-of-two p_r");
        assert_eq!(self.m % (self.block * self.pr), 0, "m must divide by b·p_r");
        assert_eq!(self.n % (self.block * self.pc), 0, "n must divide by b·p_c");
        assert!(self.n <= self.m, "tall matrices only");
    }

    /// Global row-block indices owned by grid row `pi`.
    fn row_blocks(&self, pi: usize) -> Vec<usize> {
        (0..self.m / self.block).filter(|r| r % self.pr == pi).collect()
    }

    /// Global panel indices owned by grid column `pj`.
    fn col_panels(&self, pj: usize) -> Vec<usize> {
        (0..self.n / self.block).filter(|c| c % self.pc == pj).collect()
    }
}

/// Tags for TSQR tree hops and R returns.
fn tree_tag(panel: usize, level: usize) -> u64 {
    (panel as u64) * 64 + level as u64 + 1
}

impl Workload for CandmcQr {
    fn name(&self) -> String {
        format!("candmc-qr[{}x{},b={},grid={}x{}]", self.m, self.n, self.block, self.pr, self.pc)
    }

    fn ranks(&self) -> usize {
        self.pr * self.pc
    }

    fn run(&self, env: &mut CritterEnv, verify: bool) -> WorkloadOutput {
        self.validate();
        let b = self.block;
        let rank = env.rank();
        let (pi, pj) = (rank / self.pc, rank % self.pc);
        let world = env.world();
        // Grid communicators: column (vary pi, fixed pj) and row (vary pj).
        let col_comm = env.split(&world, pj as i64, rank as i64).expect("col comm");
        let row_comm = env.split(&world, pi as i64, rank as i64).expect("row comm");
        debug_assert_eq!(col_comm.rank(), pi);
        debug_assert_eq!(row_comm.rank(), pj);

        let my_rows = self.row_blocks(pi);
        let my_cols = self.col_panels(pj);
        let el = Self::element();
        // Local matrix: owned row blocks × owned panels, stacked in order.
        let mut a = Matrix::zeros(my_rows.len() * b, my_cols.len() * b);
        for (lc, &cp) in my_cols.iter().enumerate() {
            for (lr, &rb) in my_rows.iter().enumerate() {
                for c in 0..b {
                    for r in 0..b {
                        a[(lr * b + r, lc * b + c)] = el(rb * b + r, cp * b + c);
                    }
                }
            }
        }

        let npanels = self.n / b;
        // For verification: the R row-blocks this rank ends up holding.
        let mut r_diag: Vec<(usize, Matrix)> = Vec::new();
        let mut r_off: Vec<(usize, usize, Matrix)> = Vec::new(); // (panel, local col, block)

        for p in 0..npanels {
            let panel_col_owner = p % self.pc;
            // Block classical Gram-Schmidt: every panel spans ALL rows (the
            // projection update (I−QQᵀ)A leaves residual mass in every row,
            // unlike Householder elimination — see DESIGN.md substitutions).
            let active: Vec<usize> = (0..my_rows.len()).collect();
            let m_loc = active.len() * b;

            // ---- TSQR panel factorization on the owning grid column ----
            let mut r_mine = Matrix::zeros(b, b);
            if pj == panel_col_owner {
                let lc = my_cols.iter().position(|&c| c == p).expect("panel owner");
                if m_loc > 0 {
                    let mut panel = Matrix::zeros(m_loc, b);
                    for (ar, &lr) in active.iter().enumerate() {
                        for c in 0..b {
                            for r in 0..b {
                                panel[(ar * b + r, c)] = a[(lr * b + r, lc * b + c)];
                            }
                        }
                    }
                    env.kernel(ComputeOp::Geqrf, m_loc, b, 0, flops::geqrf(m_loc, b), || {
                        geqrf(&mut panel);
                    });
                    for c in 0..b {
                        for r in 0..=c.min(m_loc - 1) {
                            r_mine[(r, c)] = panel[(r, c)];
                        }
                    }
                }
                // Binary reduction tree over the column.
                let levels = self.pr.trailing_zeros() as usize;
                for level in 0..levels {
                    let bit = 1 << level;
                    if pi & (bit - 1) != 0 {
                        break; // already retired at an earlier level
                    }
                    if pi & bit != 0 {
                        env.send(&col_comm, pi - bit, tree_tag(p, level), r_mine.data());
                        break;
                    } else if pi + bit < self.pr {
                        let data = env.recv(&col_comm, pi + bit, tree_tag(p, level), b * b);
                        let mut theirs = Matrix::from_column_major(b, b, data);
                        env.kernel(ComputeOp::Tpqrt, b, b, 0, flops::tpqrt(b, b), || {
                            tpqrt(&mut r_mine, &mut theirs);
                        });
                    }
                }
                // Broadcast the final R across the column.
                let mut rdata = r_mine.data().to_vec();
                env.bcast(&col_comm, 0, &mut rdata);
                r_mine = Matrix::from_column_major(b, b, rdata);
                r_diag.push((p, r_mine.clone()));

                // Reconstruct the explicit panel Q = P·R⁻¹.
                let mut rinv = r_mine.clone();
                env.kernel(ComputeOp::Trtri, b, 0, 0, flops::trtri(b), || {
                    if (0..b).any(|d| rinv[(d, d)] == 0.0) {
                        rinv = Matrix::identity(b);
                    } else {
                        // Upper-triangular inverse via the lower routine on Rᵀ.
                        let mut lt = rinv.transposed();
                        trtri(&mut lt);
                        rinv = lt.transposed();
                    }
                });
                if m_loc > 0 {
                    let mut panel = Matrix::zeros(m_loc, b);
                    for (ar, &lr) in active.iter().enumerate() {
                        for c in 0..b {
                            for r in 0..b {
                                panel[(ar * b + r, c)] = a[(lr * b + r, lc * b + c)];
                            }
                        }
                    }
                    let mut q = Matrix::zeros(m_loc, b);
                    env.kernel(ComputeOp::Trmm, m_loc, b, b, flops::trmm(b, m_loc), || {
                        gemm(Trans::No, Trans::No, 1.0, &panel, &rinv, 0.0, &mut q);
                    });
                    // Write Q back into the panel columns (A's panel holds Q).
                    for (ar, &lr) in active.iter().enumerate() {
                        for c in 0..b {
                            for r in 0..b {
                                a[(lr * b + r, lc * b + c)] = q[(ar * b + r, c)];
                            }
                        }
                    }
                }
            }

            // ---- Trailing update: A ← A − Q(QᵀA) ----
            // Broadcast the local Q rows across the grid row.
            let mut qdata = vec![0.0; m_loc * b];
            if pj == panel_col_owner && m_loc > 0 {
                let lc = my_cols.iter().position(|&c| c == p).unwrap();
                for (ar, &lr) in active.iter().enumerate() {
                    for c in 0..b {
                        for r in 0..b {
                            qdata[c * m_loc + ar * b + r] = a[(lr * b + r, lc * b + c)];
                        }
                    }
                }
            }
            env.bcast(&row_comm, panel_col_owner, &mut qdata);
            let q_local = Matrix::from_column_major(m_loc, b, qdata);

            // Local trailing columns: owned panels strictly after p.
            let trail: Vec<usize> = (0..my_cols.len()).filter(|&lc| my_cols[lc] > p).collect();
            let n_trail = trail.len() * b;
            if n_trail == 0 {
                // Still participate in the column allreduce for W.
                let _ = env.allreduce(&col_comm, ReduceOp::Sum, &[0.0; 1]);
                continue;
            }
            // Stack the active rows of the trailing columns.
            let mut at = Matrix::zeros(m_loc, n_trail);
            for (tc, &lc) in trail.iter().enumerate() {
                for (ar, &lr) in active.iter().enumerate() {
                    for c in 0..b {
                        for r in 0..b {
                            at[(ar * b + r, tc * b + c)] = a[(lr * b + r, lc * b + c)];
                        }
                    }
                }
            }
            // W_partial = Qᵀ·A_trail, summed over the grid column.
            let mut wpart = Matrix::zeros(b, n_trail);
            if m_loc > 0 {
                env.kernel(
                    ComputeOp::Gemm,
                    b,
                    n_trail,
                    m_loc,
                    flops::gemm(b, n_trail, m_loc),
                    || {
                        gemm(Trans::Yes, Trans::No, 1.0, &q_local, &at, 0.0, &mut wpart);
                    },
                );
            }
            let wsum = env.allreduce(&col_comm, ReduceOp::Sum, wpart.data());
            let w = Matrix::from_column_major(b, n_trail, wsum);
            // A_trail ← A_trail − Q·W.
            if m_loc > 0 {
                env.kernel(
                    ComputeOp::Gemm,
                    m_loc,
                    n_trail,
                    b,
                    flops::gemm(m_loc, n_trail, b),
                    || {
                        gemm(Trans::No, Trans::No, -1.0, &q_local, &w, 1.0, &mut at);
                    },
                );
                for (tc, &lc) in trail.iter().enumerate() {
                    for (ar, &lr) in active.iter().enumerate() {
                        for c in 0..b {
                            for r in 0..b {
                                a[(lr * b + r, lc * b + c)] = at[(ar * b + r, tc * b + c)];
                            }
                        }
                    }
                }
            }
            // The top b rows of W are R's off-diagonal blocks for this panel
            // (held by whichever rank owns row block p — but W is replicated
            // down the column, so attribute them to grid row p % pr).
            if pi == p % self.pr {
                for (tc, &lc) in trail.iter().enumerate() {
                    r_off.push((p, lc, w.sub(0, tc * b, b, b)));
                }
            }
        }

        if !verify {
            return WorkloadOutput::default();
        }
        // Local reference QR of the full matrix (test sizes only); R is
        // unique up to row signs, so compare absolute values.
        let mut reference = Matrix::zeros(self.m, self.n);
        for j in 0..self.n {
            for i in 0..self.m {
                reference[(i, j)] = el(i, j);
            }
        }
        geqrf(&mut reference);
        let mut max_err: f64 = 0.0;
        for (p, rm) in &r_diag {
            for c in 0..b {
                for r in 0..=c {
                    let refv = reference[(p * b + r, p * b + c)].abs();
                    max_err = max_err.max((rm[(r, c)].abs() - refv).abs());
                }
            }
        }
        for (p, lc, blockm) in &r_off {
            let gc = my_cols[*lc];
            for c in 0..b {
                for r in 0..b {
                    let refv = reference[(p * b + r, gc * b + c)].abs();
                    max_err = max_err.max((blockm[(r, c)].abs() - refv).abs());
                }
            }
        }
        let world = env.world();
        let global = env.allreduce(&world, ReduceOp::Max, &[max_err]);
        WorkloadOutput {
            residual: Some(global[0] / reference.norm_fro().max(1.0)),
            residual2: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_core::{CritterConfig, ExecutionPolicy, KernelStore};
    use critter_machine::MachineModel;
    use critter_sim::{run_simulation, SimConfig};

    fn run_qr(m: usize, n: usize, b: usize, pr: usize, pc: usize) -> Vec<WorkloadOutput> {
        let w = CandmcQr { m, n, block: b, pr, pc };
        let p = w.ranks();
        let machine = MachineModel::test_exact(p).shared();
        run_simulation(SimConfig::new(p), machine, move |ctx| {
            let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
            let out = w.run(&mut env, true);
            let _ = env.finish();
            out
        })
        .outputs
    }

    #[test]
    fn factors_square_grid() {
        for out in run_qr(64, 16, 4, 2, 2) {
            assert!(out.residual.unwrap() < 1e-9, "residual {:?}", out.residual);
        }
    }

    #[test]
    fn factors_tall_grid() {
        for out in run_qr(64, 16, 4, 4, 1) {
            assert!(out.residual.unwrap() < 1e-9);
        }
    }

    #[test]
    fn factors_wide_grid_blocks() {
        for out in run_qr(128, 32, 8, 2, 2) {
            assert!(out.residual.unwrap() < 1e-9);
        }
    }

    #[test]
    fn single_column_grid() {
        for out in run_qr(64, 16, 8, 2, 1) {
            assert!(out.residual.unwrap() < 1e-9);
        }
    }

    #[test]
    fn grid_shape_changes_critical_path_costs() {
        let run_rep = |pr: usize, pc: usize| {
            let w = CandmcQr { m: 128, n: 32, block: 4, pr, pc };
            let p = w.ranks();
            let machine = MachineModel::test_exact(p).shared();
            run_simulation(SimConfig::new(p), machine, move |ctx| {
                let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
                w.run(&mut env, false);
                let (rep, _) = env.finish();
                rep
            })
            .outputs
            .remove(0)
        };
        let tall = run_rep(4, 1);
        let square = run_rep(2, 2);
        assert_ne!(tall.path.comm_words, square.path.comm_words);
        assert!(tall.path.syncs > 0.0 && square.path.syncs > 0.0);
    }

    #[test]
    fn selective_execution_completes() {
        let w = CandmcQr { m: 64, n: 16, block: 4, pr: 2, pc: 2 };
        let machine = MachineModel::test_noisy(4, 3).shared();
        let report = run_simulation(SimConfig::new(4), machine, move |ctx| {
            let mut env = CritterEnv::new(
                ctx,
                CritterConfig::new(ExecutionPolicy::ConditionalExecution, 1.0),
                KernelStore::new(),
            );
            w.run(&mut env, false);
            let (rep, _) = env.finish();
            rep
        });
        let skipped: u64 = report.outputs.iter().map(|r| r.kernels_skipped).sum();
        assert!(skipped > 0);
    }
}

//! SLATE-style tile QR factorization (§V-B).
//!
//! The `m×n` matrix is split into `nb×nb` tiles (ragged at the boundary) on a
//! 2D `p_r×p_c` grid. Each panel step `k`:
//!
//! 1. `geqrt` factors the diagonal tile (with **inner blocking** `w`: the
//!    panel is processed in `w`-wide sub-panels, SLATE's thread-concurrency
//!    parameter, which changes the kernel granularity Critter observes);
//! 2. a **flat-tree `tpqrt` chain** walks down the tile column, coupling the
//!    running `R` with each below-diagonal tile and leaving Householder
//!    blocks `V_i` behind;
//! 3. the trailing update applies `Qᵀ` tile-pair-wise: `larfb`/`ormqr` on the
//!    top tile row, then a `tpmqrt` chain down every trailing column, with
//!    tiles moving by point-to-point messages (`isend`/`send`/`recv` — the
//!    routines the paper lists for SLATE).
//!
//! Tunables (§V-C): panel width `nb`, inner blocking `w`, grid shape.

use std::collections::HashMap;

use critter_core::{ComputeOp, CritterEnv};
use critter_dla::{flops, geqrf, ormqr, tp::TpTrans, tpmqrt, tpqrt, Matrix, Trans};
use critter_sim::{Communicator, ReduceOp};

use crate::workload::{Workload, WorkloadOutput};

/// One SLATE QR configuration.
#[derive(Debug, Clone)]
pub struct SlateQr {
    /// Row count.
    pub m: usize,
    /// Column count (`n ≤ m`).
    pub n: usize,
    /// Panel width / tile size `nb` (boundary tiles may be smaller).
    pub nb: usize,
    /// Inner blocking width `w ≤ nb`.
    pub inner: usize,
    /// Grid rows.
    pub pr: usize,
    /// Grid columns.
    pub pc: usize,
}

impl SlateQr {
    /// Shared element function (same as CANDMC's, so reference factors agree).
    pub fn element() -> impl Fn(usize, usize) -> f64 {
        crate::candmc_qr::CandmcQr::element()
    }

    fn mt(&self) -> usize {
        self.m.div_ceil(self.nb)
    }

    fn nt(&self) -> usize {
        self.n.div_ceil(self.nb)
    }

    /// Height of tile row `i`.
    fn tr(&self, i: usize) -> usize {
        self.nb.min(self.m - i * self.nb)
    }

    /// Width of tile column `j`.
    fn tc(&self, j: usize) -> usize {
        self.nb.min(self.n - j * self.nb)
    }

    fn owner(&self, i: usize, j: usize) -> usize {
        (i % self.pr) * self.pc + (j % self.pc)
    }

    fn validate(&self) {
        assert!(self.n <= self.m, "tall matrices only");
        assert!(self.inner > 0 && self.inner <= self.nb, "w must be in 1..=nb");
    }
}

/// Message tags: `(k, hop, j, kind)` packed; kinds: 0 = V/tau row route,
/// 1 = panel R chain, 2 = trailing A(k,j) chain, 3 = V_kk row route.
fn tag(k: usize, hop: usize, j: usize, kind: u64, mt: usize, nt: usize) -> u64 {
    ((((k * (mt + 1) + hop) * (nt + 1)) + j) as u64) * 4 + kind
}

struct QrRun<'w> {
    w: &'w SlateQr,
    rank: usize,
    world: Communicator,
    tiles: HashMap<(usize, usize), Matrix>,
    /// Householder blocks and taus received this step, keyed by row index.
    vcache: HashMap<usize, (Matrix, Vec<f64>)>,
    pending: Vec<critter_core::env::CritterRequest>,
}

impl<'w> QrRun<'w> {
    fn own(&self, i: usize, j: usize) -> bool {
        self.w.owner(i, j) == self.rank
    }

    /// Charge the inner-blocked panel kernels (`geqrf` + `larft` per `w`-wide
    /// sub-panel); the first sub-kernel's body performs the whole real
    /// factorization.
    fn geqrt(&mut self, env: &mut CritterEnv, k: usize) -> Vec<f64> {
        let (rows0, cols) = (self.w.tr(k), self.w.tc(k));
        let wid = self.w.inner;
        let tile = self.tiles.get_mut(&(k, k)).expect("diag tile");
        let mut tau = Vec::new();
        for s in 0..cols.div_ceil(wid) {
            let sw = wid.min(cols - s * wid);
            let rows = rows0 - s * wid.min(rows0.saturating_sub(1));
            let first = s == 0;
            env.kernel(ComputeOp::Geqrf, rows, sw, 0, flops::geqrf(rows.max(sw), sw), || {
                if first {
                    tau = geqrf(tile);
                }
            });
            env.kernel(ComputeOp::Larft, rows, sw, 0, flops::larft(rows.max(sw), sw), || {});
        }
        tau
    }

    /// Send a Householder block (V tile + taus) to the grid-row consumers of
    /// tile row `i` at step `k`.
    fn route_v(&mut self, env: &mut CritterEnv, k: usize, i: usize, kind: u64) {
        let w = self.w;
        let (mt, nt) = (w.mt(), w.nt());
        let mut payload = self.tiles[&(i, k)].data().to_vec();
        let tau = &self.vcache[&i].1;
        payload.extend_from_slice(tau);
        let mut dests = std::collections::BTreeSet::new();
        for j in (k + 1)..nt {
            dests.insert(w.owner(if kind == 3 { k } else { i }, j));
        }
        dests.remove(&self.rank);
        for d in dests {
            let r = env.isend(&self.world, d, tag(k, i, 0, kind, mt, nt), payload.clone());
            self.pending.push(r);
        }
    }

    /// Fetch the Householder block for tile row `i` of step `k` (local or
    /// from the step cache after receiving it).
    fn get_v(&mut self, env: &mut CritterEnv, k: usize, i: usize, kind: u64) -> (Matrix, Vec<f64>) {
        if let Some(v) = self.vcache.get(&i) {
            return v.clone();
        }
        let w = self.w;
        let (mt, nt) = (w.mt(), w.nt());
        let (vr, vc) = (w.tr(i), w.tc(k));
        // tpqrt taus always span the panel width; geqrt taus equal it too
        // because diagonal tiles are at least as tall as wide.
        let ntau = vc;
        let data = env.recv(&self.world, w.owner(i, k), tag(k, i, 0, kind, mt, nt), vr * vc + ntau);
        let v = Matrix::from_column_major(vr, vc, data[..vr * vc].to_vec());
        let tau = data[vr * vc..].to_vec();
        self.vcache.insert(i, (v.clone(), tau.clone()));
        (v, tau)
    }
}

impl Workload for SlateQr {
    fn name(&self) -> String {
        format!(
            "slate-qr[{}x{},nb={},w={},grid={}x{}]",
            self.m, self.n, self.nb, self.inner, self.pr, self.pc
        )
    }

    fn ranks(&self) -> usize {
        self.pr * self.pc
    }

    fn run(&self, env: &mut CritterEnv, verify: bool) -> WorkloadOutput {
        self.validate();
        let (mt, nt) = (self.mt(), self.nt());
        let rank = env.rank();
        assert_eq!(env.size(), self.ranks(), "rank count mismatch");
        let el = Self::element();
        let mut tiles = HashMap::new();
        for j in 0..nt {
            for i in 0..mt {
                if self.owner(i, j) == rank {
                    let (ti, tj) = (self.tr(i), self.tc(j));
                    let mut t = Matrix::zeros(ti, tj);
                    for c in 0..tj {
                        for r in 0..ti {
                            t[(r, c)] = el(i * self.nb + r, j * self.nb + c);
                        }
                    }
                    tiles.insert((i, j), t);
                }
            }
        }
        let world = env.world();
        let mut run =
            QrRun { w: self, rank, world, tiles, vcache: HashMap::new(), pending: Vec::new() };

        for k in 0..nt {
            run.vcache.clear();
            let wk = self.tc(k); // panel width of this step
            assert!(self.tr(k) >= wk, "diagonal tile must be tall (m ≥ n guarantees this)");
            // ---- Panel: geqrt at (k,k), then the tpqrt chain down column k.
            if run.own(k, k) {
                let tau = run.geqrt(env, k);
                run.vcache.insert(k, (run.tiles[&(k, k)].clone(), tau));
                run.route_v(env, k, k, 3);
                // Start the R chain: extract R (upper triangle of (k,k)).
                if k + 1 < mt {
                    let mut r = run.tiles[&(k, k)].sub(0, 0, wk, wk);
                    r.triu_in_place();
                    let nxt = self.owner(k + 1, k);
                    if nxt != rank {
                        let req =
                            env.isend(&run.world, nxt, tag(k, k + 1, 0, 1, mt, nt), r.into_data());
                        run.pending.push(req);
                    } else {
                        run.vcache.insert(usize::MAX, (r, Vec::new())); // local handoff
                    }
                }
            }
            // Walk the chain: each owner of (i,k) factors [R; tile(i,k)].
            for i in (k + 1)..mt {
                if !run.own(i, k) {
                    continue;
                }
                let prev = if i == k + 1 { self.owner(k, k) } else { self.owner(i - 1, k) };
                let mut r = if prev == rank {
                    run.vcache.remove(&usize::MAX).expect("local R handoff").0
                } else {
                    let data = env.recv(&run.world, prev, tag(k, i, 0, 1, mt, nt), wk * wk);
                    Matrix::from_column_major(wk, wk, data)
                };
                let ti = self.tr(i);
                let mut tau_i = Vec::new();
                {
                    let b = run.tiles.get_mut(&(i, k)).expect("panel tile");
                    env.kernel(ComputeOp::Tpqrt, ti, wk, 0, flops::tpqrt(ti, wk), || {
                        tau_i = tpqrt(&mut r, b);
                    });
                    if tau_i.is_empty() {
                        tau_i = vec![0.0; wk]; // skipped body: placeholder taus
                    }
                }
                run.vcache.insert(i, (run.tiles[&(i, k)].clone(), tau_i));
                run.route_v(env, k, i, 0);
                // Pass R on (or return it to the diagonal owner at the end).
                let (nxt, hop) =
                    if i + 1 < mt { (self.owner(i + 1, k), i + 1) } else { (self.owner(k, k), mt) };
                if nxt == rank {
                    if i + 1 < mt {
                        run.vcache.insert(usize::MAX, (r, Vec::new()));
                    } else {
                        run.tiles.get_mut(&(k, k)).unwrap().set_sub(0, 0, &r);
                    }
                } else {
                    let req = env.isend(&run.world, nxt, tag(k, hop, 0, 1, mt, nt), r.into_data());
                    run.pending.push(req);
                }
            }
            // Diagonal owner receives the final R back.
            if run.own(k, k) && k + 1 < mt && self.owner(mt - 1, k) != rank {
                let data =
                    env.recv(&run.world, self.owner(mt - 1, k), tag(k, mt, 0, 1, mt, nt), wk * wk);
                run.tiles.get_mut(&(k, k)).unwrap().set_sub(
                    0,
                    0,
                    &Matrix::from_column_major(wk, wk, data),
                );
            }

            // ---- Trailing update, column by column.
            for j in (k + 1)..nt {
                let tj = self.tc(j);
                let top_words = self.tr(k) * tj;
                // larfb on the top tile A(k,j).
                let mut akj = if run.own(k, j) {
                    let (vkk, taukk) = run.get_v(env, k, k, 3);
                    let tile = run.tiles.get_mut(&(k, j)).expect("top tile");
                    let wid = self.inner;
                    for s in 0..wk.div_ceil(wid) {
                        let sw = wid.min(wk - s * wid);
                        let first = s == 0;
                        env.kernel(
                            ComputeOp::Ormqr,
                            self.tr(k),
                            tj,
                            sw,
                            flops::ormqr(self.tr(k), tj, sw),
                            || {
                                if first {
                                    ormqr(Trans::Yes, &vkk, &taukk, tile);
                                }
                            },
                        );
                    }
                    Some(tile.clone())
                } else {
                    None
                };
                // Launch the chain: hand the top tile to the first
                // below-diagonal holder (it returns home after the last hop).
                if run.own(k, j) && k + 1 < mt {
                    let first = self.owner(k + 1, j);
                    if first != rank {
                        let t = akj.take().expect("top tile present at chain start");
                        let req = env.isend(
                            &run.world,
                            first,
                            tag(k, k + 1, j, 2, mt, nt),
                            t.into_data(),
                        );
                        run.pending.push(req);
                    }
                }
                // tpmqrt chain down the column.
                for i in (k + 1)..mt {
                    if !run.own(i, j) {
                        continue;
                    }
                    let prev = if i == k + 1 { self.owner(k, j) } else { self.owner(i - 1, j) };
                    let mut top = match akj.take() {
                        Some(t) if prev == rank => t,
                        other => {
                            akj = other; // put back anything we should not consume
                            let data =
                                env.recv(&run.world, prev, tag(k, i, j, 2, mt, nt), top_words);
                            Matrix::from_column_major(self.tr(k), tj, data)
                        }
                    };
                    let (vi, taui) = run.get_v(env, k, i, 0);
                    let ti = self.tr(i);
                    {
                        let bot = run.tiles.get_mut(&(i, j)).expect("trailing tile");
                        let wid = self.inner;
                        for s in 0..wk.div_ceil(wid) {
                            let sw = wid.min(wk - s * wid);
                            let first = s == 0;
                            env.kernel(
                                ComputeOp::Tpmqrt,
                                ti,
                                sw,
                                tj,
                                flops::tpmqrt(ti, sw, tj),
                                || {
                                    if first {
                                        tpmqrt(TpTrans::Yes, &vi, &taui, &mut top, bot);
                                    }
                                },
                            );
                        }
                    }
                    // Pass the top tile on (or home).
                    let (nxt, hop) = if i + 1 < mt {
                        (self.owner(i + 1, j), i + 1)
                    } else {
                        (self.owner(k, j), mt)
                    };
                    if nxt == rank {
                        if i + 1 < mt {
                            akj = Some(top);
                        } else {
                            *run.tiles.get_mut(&(k, j)).unwrap() = top;
                        }
                    } else {
                        let req =
                            env.isend(&run.world, nxt, tag(k, hop, j, 2, mt, nt), top.into_data());
                        run.pending.push(req);
                    }
                }
                // Column owner of (k,j) takes the final top tile back.
                if run.own(k, j) && k + 1 < mt {
                    let last_owner = self.owner(mt - 1, j);
                    if last_owner != rank {
                        let data =
                            env.recv(&run.world, last_owner, tag(k, mt, j, 2, mt, nt), top_words);
                        *run.tiles.get_mut(&(k, j)).unwrap() =
                            Matrix::from_column_major(self.tr(k), tj, data);
                    } else if let Some(t) = akj.take() {
                        *run.tiles.get_mut(&(k, j)).unwrap() = t;
                    }
                }
            }
        }
        for r in run.pending.drain(..) {
            env.wait(r);
        }

        if !verify {
            return WorkloadOutput::default();
        }
        // Compare the R blocks (upper triangle of tile rows 0..nt) against a
        // local reference QR, up to row signs.
        let mut reference = Matrix::zeros(self.m, self.n);
        for j in 0..self.n {
            for i in 0..self.m {
                reference[(i, j)] = el(i, j);
            }
        }
        geqrf(&mut reference);
        let mut max_err: f64 = 0.0;
        for (&(i, j), t) in &run.tiles {
            if i >= nt || j < i {
                continue; // only R-carrying tiles (upper block triangle)
            }
            for c in 0..t.cols() {
                for r in 0..t.rows() {
                    let (gi, gj) = (i * self.nb + r, j * self.nb + c);
                    if gi <= gj {
                        let refv = reference[(gi, gj)].abs();
                        max_err = max_err.max((t[(r, c)].abs() - refv).abs());
                    }
                }
            }
        }
        let world = env.world();
        let global = env.allreduce(&world, ReduceOp::Max, &[max_err]);
        WorkloadOutput {
            residual: Some(global[0] / reference.norm_fro().max(1.0)),
            residual2: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_core::{CritterConfig, ExecutionPolicy, KernelStore};
    use critter_machine::MachineModel;
    use critter_sim::{run_simulation, SimConfig};

    fn run_qr(
        m: usize,
        n: usize,
        nb: usize,
        w: usize,
        pr: usize,
        pc: usize,
    ) -> Vec<WorkloadOutput> {
        let wl = SlateQr { m, n, nb, inner: w, pr, pc };
        let p = wl.ranks();
        let machine = MachineModel::test_exact(p).shared();
        run_simulation(SimConfig::new(p), machine, move |ctx| {
            let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
            let out = wl.run(&mut env, true);
            let _ = env.finish();
            out
        })
        .outputs
    }

    #[test]
    fn factors_correctly() {
        for out in run_qr(48, 16, 8, 4, 2, 2) {
            assert!(out.residual.unwrap() < 1e-9, "residual {:?}", out.residual);
        }
    }

    #[test]
    fn factors_with_full_inner_block() {
        for out in run_qr(48, 16, 8, 8, 2, 2) {
            assert!(out.residual.unwrap() < 1e-9);
        }
    }

    #[test]
    fn factors_tall_grid() {
        for out in run_qr(64, 16, 8, 4, 4, 1) {
            assert!(out.residual.unwrap() < 1e-9);
        }
    }

    #[test]
    fn factors_single_rank_per_column() {
        for out in run_qr(32, 16, 8, 2, 1, 4) {
            assert!(out.residual.unwrap() < 1e-9);
        }
    }

    #[test]
    fn factors_ragged_tiles() {
        // 52 % 12 and 20 % 12 are nonzero: boundary tiles exercise raggedness.
        for out in run_qr(52, 20, 12, 5, 2, 2) {
            assert!(out.residual.unwrap() < 1e-9, "residual {:?}", out.residual);
        }
    }

    #[test]
    fn inner_blocking_changes_kernel_count() {
        let count = |w: usize| {
            let wl = SlateQr { m: 32, n: 16, nb: 8, inner: w, pr: 2, pc: 2 };
            let machine = MachineModel::test_exact(4).shared();
            let rep = run_simulation(SimConfig::new(4), machine, move |ctx| {
                let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
                wl.run(&mut env, false);
                let (rep, _) = env.finish();
                rep
            });
            rep.outputs.iter().map(|r| r.kernels_executed).sum::<u64>()
        };
        assert!(count(2) > count(8), "smaller w must produce more kernels");
    }

    #[test]
    fn selective_execution_completes() {
        let wl = SlateQr { m: 32, n: 16, nb: 8, inner: 4, pr: 2, pc: 2 };
        let machine = MachineModel::test_noisy(4, 21).shared();
        let report = run_simulation(SimConfig::new(4), machine, move |ctx| {
            let mut env = CritterEnv::new(
                ctx,
                CritterConfig::new(ExecutionPolicy::ConditionalExecution, 1.0),
                KernelStore::new(),
            );
            wl.run(&mut env, false);
            let (rep, _) = env.finish();
            rep
        });
        let skipped: u64 = report.outputs.iter().map(|r| r.kernels_skipped).sum();
        assert!(skipped > 0);
    }
}

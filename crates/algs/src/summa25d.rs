//! 2.5D matrix multiplication — the §VIII extensibility demonstration.
//!
//! The paper closes by arguing its techniques "should be extensible to other
//! applications and autotuning methods", and its authors' own prior work on
//! communication-avoiding 2.5D algorithms \[33\]\[41\] is the canonical
//! example: on `p = r²·c` processors, `c` replicas of the operands trade
//! memory for a `√c` reduction in communication volume, and the best `c` for
//! a given machine and problem size is a classic autotuning question.
//!
//! This workload implements SUMMA over an `r×r×c` grid with element-cyclic
//! layer distribution (the same layout machinery as Capital's Cholesky):
//! operands are generated on layer 0 and **replicated along the depth**
//! (the 2.5D memory cost, paid as intercepted broadcasts), each layer computes
//! its cyclic share of the `r` SUMMA steps (row + column broadcasts, local
//! `gemm`s in `inner`-wide k-chunks — the kernel-granularity tunable), and
//! partial products are combined by a depth allreduce.
//!
//! Tunables: replication depth `c` and inner blocking `inner`.

use critter_core::{ComputeOp, CritterEnv};
use critter_dla::{flops, gemm, Matrix, Trans};
use critter_sim::ReduceOp;

use crate::workload::{Workload, WorkloadOutput};

/// One 2.5D SUMMA configuration.
#[derive(Debug, Clone)]
pub struct Summa25D {
    /// Matrix dimension (`n × n` operands).
    pub n: usize,
    /// Replication depth `c` (`p = r²·c` with integer `r`).
    pub c: usize,
    /// Total rank count.
    pub ranks: usize,
    /// Inner blocking of the local multiply's k dimension.
    pub inner: usize,
}

impl Summa25D {
    /// Layer-grid edge `r` with `p = r²·c`; panics if the shape is invalid.
    fn r(&self) -> usize {
        assert!(self.c > 0 && self.ranks.is_multiple_of(self.c), "c must divide p");
        let layer = self.ranks / self.c;
        let r = (layer as f64).sqrt().round() as usize;
        assert_eq!(r * r * self.c, self.ranks, "p must equal r²·c");
        assert!(self.n.is_multiple_of(r), "n must divide by the layer edge");
        r
    }

    /// Element functions for the two operands.
    fn element_a() -> impl Fn(usize, usize) -> f64 {
        crate::candmc_qr::CandmcQr::element()
    }

    fn element_b(n: usize) -> impl Fn(usize, usize) -> f64 {
        let el = crate::candmc_qr::CandmcQr::element();
        move |i, j| el(i + n, j + 2 * n)
    }
}

impl Workload for Summa25D {
    fn name(&self) -> String {
        format!("summa25d[n={},c={},ib={},p={}]", self.n, self.c, self.inner, self.ranks)
    }

    fn ranks(&self) -> usize {
        self.ranks
    }

    fn run(&self, env: &mut CritterEnv, verify: bool) -> WorkloadOutput {
        let r = self.r();
        let c = self.c;
        let n = self.n;
        let m = n / r; // local edge
        let rank = env.rank();
        assert_eq!(env.size(), self.ranks, "rank count mismatch");
        let (i, j, k) = (rank % r, (rank / r) % r, rank / (r * r));
        let world = env.world();
        // Fibers: vary j (row bcast source), vary i (col bcast source),
        // vary k (replication/reduction), and the layer (unused directly but
        // registered so eager propagation sees the full grid).
        let comm_j = env.split(&world, (i + r * k) as i64, rank as i64).expect("comm_j");
        let comm_i = env.split(&world, (j + r * k) as i64, rank as i64).expect("comm_i");
        let comm_k = env.split(&world, (i + r * j) as i64, rank as i64).expect("comm_k");
        let _layer = env.split(&world, k as i64, rank as i64).expect("layer");

        // Operands: generated on layer 0 (cyclic layout: global (gi, gj) =
        // (i + r·li, j + r·lj)), then replicated along the depth — the 2.5D
        // memory/communication trade: this bcast is what buying `c` costs.
        let ea = Self::element_a();
        let eb = Self::element_b(n);
        let fill = |f: &dyn Fn(usize, usize) -> f64| {
            let mut loc = Matrix::zeros(m, m);
            for lj in 0..m {
                for li in 0..m {
                    loc[(li, lj)] = f(i + r * li, j + r * lj);
                }
            }
            loc
        };
        let mut a_data = if k == 0 { fill(&ea).into_data() } else { vec![0.0; m * m] };
        let mut b_data = if k == 0 { fill(&eb).into_data() } else { vec![0.0; m * m] };
        env.bcast(&comm_k, 0, &mut a_data);
        env.bcast(&comm_k, 0, &mut b_data);
        let a = Matrix::from_column_major(m, m, a_data);
        let b = Matrix::from_column_major(m, m, b_data);

        // SUMMA: r element-cyclic k-panels, dealt round-robin to the c layers.
        let mut c_local = Matrix::zeros(m, m);
        let mut s = k;
        while s < r {
            // A panel (global cols ≡ s mod r) lives on layer column j = s;
            // B panel (global rows ≡ s) on layer row i = s.
            let mut ap = if j == s { a.data().to_vec() } else { vec![0.0; m * m] };
            env.bcast(&comm_j, s, &mut ap);
            let mut bp = if i == s { b.data().to_vec() } else { vec![0.0; m * m] };
            env.bcast(&comm_i, s, &mut bp);
            let ap = Matrix::from_column_major(m, m, ap);
            let bp = Matrix::from_column_major(m, m, bp);
            // Local multiply in `inner`-wide k-chunks: each chunk is a real
            // partial product and a separately profiled kernel — the
            // granularity tunable Critter observes.
            let ib = self.inner.min(m).max(1);
            let mut k0 = 0;
            while k0 < m {
                let kw = ib.min(m - k0);
                let achunk = ap.sub(0, k0, m, kw);
                let bchunk = bp.sub(k0, 0, kw, m);
                env.kernel(ComputeOp::Gemm, m, m, kw, flops::gemm(m, m, kw), || {
                    gemm(Trans::No, Trans::No, 1.0, &achunk, &bchunk, 1.0, &mut c_local);
                });
                k0 += kw;
            }
            s += c;
        }
        // Combine the layers' partial products.
        let summed = env.allreduce(&comm_k, ReduceOp::Sum, c_local.data());
        let c_local = Matrix::from_column_major(m, m, summed);

        if !verify {
            return WorkloadOutput::default();
        }
        // Reference: local entries of A·B from the element formulas.
        let mut max_err: f64 = 0.0;
        let mut ref_norm: f64 = 0.0;
        for lj in 0..m {
            for li in 0..m {
                let (gi, gj) = (i + r * li, j + r * lj);
                let mut expect = 0.0;
                for t in 0..n {
                    expect += ea(gi, t) * eb(t, gj);
                }
                max_err = max_err.max((c_local[(li, lj)] - expect).abs());
                ref_norm = ref_norm.max(expect.abs());
            }
        }
        let global = env.allreduce(&world, ReduceOp::Max, &[max_err, ref_norm]);
        WorkloadOutput { residual: Some(global[0] / global[1].max(1.0)), residual2: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_core::{CritterConfig, ExecutionPolicy, KernelStore};
    use critter_machine::MachineModel;
    use critter_sim::{run_simulation, SimConfig};

    fn run_summa(n: usize, c: usize, p: usize, inner: usize) -> Vec<WorkloadOutput> {
        let w = Summa25D { n, c, ranks: p, inner };
        let machine = MachineModel::test_exact(p).shared();
        run_simulation(SimConfig::new(p), machine, move |ctx| {
            let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
            let out = w.run(&mut env, true);
            let _ = env.finish();
            out
        })
        .outputs
    }

    #[test]
    fn multiplies_correctly_2d() {
        // c = 1 degenerates to plain SUMMA.
        for out in run_summa(16, 1, 4, 8) {
            assert!(out.residual.unwrap() < 1e-10, "residual {:?}", out.residual);
        }
    }

    #[test]
    fn multiplies_correctly_25d() {
        for out in run_summa(16, 4, 16, 4) {
            assert!(out.residual.unwrap() < 1e-10);
        }
    }

    #[test]
    fn multiplies_correctly_3d_limit() {
        // c = p: every layer is a single rank (r = 1).
        for out in run_summa(8, 4, 4, 8) {
            assert!(out.residual.unwrap() < 1e-10);
        }
    }

    #[test]
    fn inner_blocking_changes_kernel_granularity() {
        let count = |inner: usize| {
            let w = Summa25D { n: 32, c: 1, ranks: 4, inner };
            let machine = MachineModel::test_exact(4).shared();
            let rep = run_simulation(SimConfig::new(4), machine, move |ctx| {
                let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
                w.run(&mut env, false);
                let (rep, _) = env.finish();
                rep
            });
            rep.outputs.iter().map(|r| r.kernels_executed).sum::<u64>()
        };
        assert!(count(4) > count(16), "smaller inner blocks → more kernels");
    }

    #[test]
    fn replication_reduces_path_communication() {
        // The 2.5D claim: larger c cuts per-layer SUMMA broadcasts (each layer
        // does r/c steps), at the cost of the initial depth replication.
        let words = |c: usize| {
            let w = Summa25D { n: 64, c, ranks: 16, inner: 64 };
            let machine = MachineModel::test_exact(16).shared();
            let rep = run_simulation(SimConfig::new(16), machine, move |ctx| {
                let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
                w.run(&mut env, false);
                let (rep, _) = env.finish();
                rep
            });
            rep.outputs.iter().fold(0.0f64, |acc, r| acc.max(r.path.syncs))
        };
        assert!(words(4) < words(1), "replication should shorten the sync chain");
    }

    #[test]
    fn selective_execution_completes() {
        // r = 2, m = 32, inner = 4: 8 same-signature gemm chunks per SUMMA
        // step × 2 steps — plenty of repetition to converge and skip.
        let w = Summa25D { n: 64, c: 1, ranks: 4, inner: 4 };
        let machine = MachineModel::test_noisy(4, 31).shared();
        let report = run_simulation(SimConfig::new(4), machine, move |ctx| {
            let mut env = CritterEnv::new(
                ctx,
                CritterConfig::new(ExecutionPolicy::ConditionalExecution, 1.0),
                KernelStore::new(),
            );
            w.run(&mut env, false);
            let (rep, _) = env.finish();
            rep
        });
        let skipped: u64 = report.outputs.iter().map(|r| r.kernels_skipped).sum();
        assert!(skipped > 0, "repeated SUMMA kernels must become skippable");
    }
}

//! The workload abstraction the autotuner drives.

use critter_core::CritterEnv;

/// What a workload reports back after a run.
#[derive(Debug, Clone, Default)]
pub struct WorkloadOutput {
    /// Relative factorization residual (e.g. `‖LLᵀ−A‖/‖A‖`), computed only
    /// when verification was requested — meaningful only under full
    /// execution, since selective execution corrupts numerics by design.
    pub residual: Option<f64>,
    /// Secondary invariant residual (e.g. `‖L·L⁻¹−I‖`, `‖QᵀQ−I‖`).
    pub residual2: Option<f64>,
}

/// A distributed algorithm configuration runnable under the Critter
/// environment — one point of an autotuning configuration space.
pub trait Workload: Send + Sync {
    /// Human-readable configuration label (for reports).
    fn name(&self) -> String;

    /// Number of ranks this configuration requires.
    fn ranks(&self) -> usize;

    /// Execute the algorithm through the interception layer. `verify`
    /// requests numerical residual computation (full-execution runs only).
    fn run(&self, env: &mut CritterEnv, verify: bool) -> WorkloadOutput;
}

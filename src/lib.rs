//! # critter
//!
//! A reproduction of *“Accelerating Distributed-Memory Autotuning via
//! Statistical Analysis of Execution Paths”* (Hutter & Solomonik, IPDPS 2021)
//! as a self-contained Rust workspace: the **Critter** profiler (online
//! critical-path analysis + confidence-driven selective kernel execution),
//! a deterministic discrete-event simulator standing in for the paper's
//! Stampede2 testbed, real dense-linear-algebra kernels, the four
//! distributed factorization workloads the paper autotunes, and the
//! exhaustive-search tuning harness with the paper's evaluation metrics.
//!
//! ## Quickstart
//!
//! ```
//! use critter::prelude::*;
//!
//! // Tune a small SLATE-Cholesky space with online propagation at ε = 0.25.
//! let opts = TuningOptions::new(ExecutionPolicy::OnlinePropagation, 0.25).with_test_machine();
//! let report = Autotuner::new(opts).tune(&TuningSpace::SlateCholesky.smoke());
//! assert!(report.speedup() > 0.0);
//! println!("autotuning speedup: {:.2}x, mean prediction error: {:.2}%",
//!          report.speedup(), 100.0 * report.mean_error());
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every reproduced figure.

#![deny(missing_docs)]

/// The four factorization workloads.
pub use critter_algs as algs;
/// The autotuning driver, spaces, and metrics.
pub use critter_autotune as autotune;
/// Analytic BSP cost models.
pub use critter_bsp as bsp;
/// The Critter profiler: path analysis + selective execution.
pub use critter_core as core;
/// Sequential dense linear algebra kernels.
pub use critter_dla as dla;
/// Machine model: α-β-γ costs, noise, counter-based RNG.
pub use critter_machine as machine;
/// Tuning sessions: checkpoint/resume, persistent profiles, warm-start.
pub use critter_session as session;
/// The distributed-memory simulator (MPI substrate).
pub use critter_sim as sim;
/// Single-pass statistics and confidence intervals.
pub use critter_stats as stats;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use critter_algs::{Workload, WorkloadOutput};
    pub use critter_autotune::{Autotuner, TuningOptions, TuningReport, TuningSpace};
    pub use critter_core::{
        ComputeOp, CritterConfig, CritterEnv, CritterError, ExecutionPolicy, KernelSig,
        KernelStore, Result,
    };
    pub use critter_machine::{KernelClass, MachineModel, MachineParams, NoiseParams};
    pub use critter_session::{SessionConfig, StalenessPolicy};
    pub use critter_sim::{
        run_simulation, BackendKind, Communicator, FaultPlan, RankCtx, ReduceOp, SimConfig,
    };
}

//! `critter-tune`: command-line autotuning driver.
//!
//! Runs one tuning sweep over a configuration space under a chosen
//! selective-execution policy and prints the paper's evaluation metrics.
//!
//! ```text
//! critter-tune --space slate-cholesky --policy online --epsilon 0.25
//! critter-tune --space candmc-qr --policy eager --epsilon 0.5 --smoke --reps 2
//! critter-tune --space capital-cholesky --policy conditional --extrapolate
//! ```

use critter::prelude::*;

struct Args {
    space: TuningSpace,
    policy: ExecutionPolicy,
    epsilon: f64,
    smoke: bool,
    reps: usize,
    allocation: u64,
    extrapolate: bool,
    no_overhead: bool,
    profile: bool,
    json: bool,
    checkpoint_dir: Option<std::path::PathBuf>,
    resume: bool,
    warm_start: Option<std::path::PathBuf>,
    profile_out: Option<std::path::PathBuf>,
    store: Option<std::path::PathBuf>,
    faults: Option<f64>,
    retries: usize,
    backend: BackendKind,
    seed: Option<u64>,
    observe: bool,
    report_out: Option<std::path::PathBuf>,
    metrics_out: Option<std::path::PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: critter-tune --space <capital-cholesky|slate-cholesky|candmc-qr|slate-qr|summa25d>\n\
         \x20                 --policy <conditional|local|online|apriori|eager|full>\n\
         \x20                 [--epsilon E=0.25] [--smoke] [--reps N=1]\n\
         \x20                 [--allocation A=0] [--extrapolate] [--no-overhead] [--profile] [--json]\n\
         \x20                 [--checkpoint-dir DIR] [--resume] [--warm-start FILE]\n\
         \x20                 [--profile-out FILE] [--store DIR] [--faults PANIC_PROB] [--retries N=2]\n\
         \x20                 [--backend <threads|tasks>] [--seed N]\n\
         \x20                 [--observe] [--report-out FILE] [--metrics-out FILE]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        space: TuningSpace::SlateCholesky,
        policy: ExecutionPolicy::OnlinePropagation,
        epsilon: 0.25,
        smoke: false,
        reps: 1,
        allocation: 0,
        extrapolate: false,
        no_overhead: false,
        profile: false,
        json: false,
        checkpoint_dir: None,
        resume: false,
        warm_start: None,
        profile_out: None,
        store: None,
        faults: None,
        retries: 2,
        backend: BackendKind::default(),
        seed: None,
        observe: false,
        report_out: None,
        metrics_out: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--space" => {
                i += 1;
                args.space = match argv.get(i).map(String::as_str) {
                    Some("capital-cholesky") => TuningSpace::CapitalCholesky,
                    Some("slate-cholesky") => TuningSpace::SlateCholesky,
                    Some("candmc-qr") => TuningSpace::CandmcQr,
                    Some("slate-qr") => TuningSpace::SlateQr,
                    Some("summa25d") => TuningSpace::Summa25D,
                    _ => usage(),
                };
            }
            "--policy" => {
                i += 1;
                args.policy = match argv.get(i).map(String::as_str) {
                    Some("conditional") => ExecutionPolicy::ConditionalExecution,
                    Some("local") => ExecutionPolicy::LocalPropagation,
                    Some("online") => ExecutionPolicy::OnlinePropagation,
                    Some("apriori") => ExecutionPolicy::APrioriPropagation,
                    Some("eager") => ExecutionPolicy::EagerPropagation,
                    Some("full") => ExecutionPolicy::Full,
                    _ => usage(),
                };
            }
            "--epsilon" => {
                i += 1;
                args.epsilon = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--reps" => {
                i += 1;
                args.reps = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--allocation" => {
                i += 1;
                args.allocation =
                    argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--smoke" => args.smoke = true,
            "--extrapolate" => args.extrapolate = true,
            "--no-overhead" => args.no_overhead = true,
            "--profile" => args.profile = true,
            "--json" => args.json = true,
            "--checkpoint-dir" => {
                i += 1;
                args.checkpoint_dir = Some(argv.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--resume" => args.resume = true,
            "--warm-start" => {
                i += 1;
                args.warm_start = Some(argv.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--profile-out" => {
                i += 1;
                args.profile_out = Some(argv.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--store" => {
                i += 1;
                args.store = Some(argv.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--faults" => {
                i += 1;
                args.faults =
                    Some(argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--retries" => {
                i += 1;
                args.retries = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--backend" => {
                i += 1;
                args.backend = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                args.seed =
                    Some(argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--observe" => args.observe = true,
            "--report-out" => {
                i += 1;
                args.report_out = Some(argv.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--metrics-out" => {
                i += 1;
                args.metrics_out = Some(argv.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    args
}

/// Emit a machine-readable summary (hand-rolled JSON keeps the root crate
/// dependency-free; config labels contain no characters needing escapes
/// beyond quotes/backslashes, which are handled).
fn print_json(report: &critter::autotune::TuningReport) {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let truth = report.true_times();
    let preds = report.predicted_times();
    let errs = report.per_config_error();
    let mut configs = String::new();
    for (i, c) in report.configs.iter().enumerate() {
        if i > 0 {
            configs.push(',');
        }
        configs.push_str(&format!(
            "{{\"name\":\"{}\",\"true_time\":{},\"predicted\":{},\"rel_error\":{}}}",
            esc(&c.name),
            truth[i],
            preds[i],
            errs[i]
        ));
    }
    println!(
        "{{\"policy\":\"{}\",\"epsilon\":{},\"tuning_time\":{},\"full_time\":{},\"speedup\":{},\"kernel_time_speedup\":{},\"skip_fraction\":{},\"mean_error\":{},\"mean_comp_error\":{},\"selection_quality\":{},\"selected\":{},\"optimal\":{},\"configs\":[{}]}}",
        esc(report.policy.name()),
        report.epsilon,
        report.tuning_time(),
        report.full_time(),
        report.speedup(),
        report.kernel_time_speedup(),
        report.skip_fraction(),
        report.mean_error(),
        report.mean_comp_error(),
        report.selection_quality(),
        report.selected(),
        report.optimal(),
        configs
    );
}

fn main() {
    let args = parse_args();
    let workloads = if args.smoke { args.space.smoke() } else { args.space.bench() };
    let mut opts = TuningOptions::new(args.policy, args.epsilon).with_backend(args.backend);
    opts.reset_between_configs = args.space.resets_between_configs();
    opts.reps = args.reps;
    opts.allocation = args.allocation;
    opts.extrapolate = args.extrapolate;
    opts.charge_internal = !args.no_overhead;
    if let Some(seed) = args.seed {
        opts = opts.with_seed(seed);
    }
    if args.observe || args.metrics_out.is_some() {
        opts = opts.with_observe();
    }
    if let Some(p) = args.faults {
        opts =
            opts.with_faults(FaultPlan::new(0xFA17).with_rank_panics(p)).with_retries(args.retries);
    }
    let mut session = SessionConfig::new();
    if let Some(dir) = &args.checkpoint_dir {
        if !args.resume {
            let _ = std::fs::remove_dir_all(dir);
        }
        session = session.with_checkpoint_dir(dir);
    }
    if let Some(path) = &args.warm_start {
        session = session.with_warm_start(path);
    }
    if let Some(path) = &args.profile_out {
        session = session.with_profile_out(path);
    }
    if let Some(dir) = &args.store {
        session = session.with_store(dir);
    }

    eprintln!(
        "tuning {} ({} configurations, {} ranks) under {} at ε = {} …",
        args.space.name(),
        workloads.len(),
        workloads[0].ranks(),
        args.policy.name(),
        args.epsilon
    );
    let t0 = std::time::Instant::now();
    let report = if session.is_persistent() || args.faults.is_some() {
        Autotuner::new(opts).tune_session(&workloads, &session).unwrap_or_else(|e| {
            eprintln!("session failed: {e}");
            std::process::exit(1)
        })
    } else {
        Autotuner::new(opts).tune(&workloads)
    };
    eprintln!("done in {:.1?} host time\n", t0.elapsed());

    // Canonical artifacts: the same bytes `critter-serve` serves for an
    // equivalent job spec (the CI smoke job `cmp`s the two).
    if let Some(path) = &args.report_out {
        std::fs::write(path, report.to_json_string()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1)
        });
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = &args.metrics_out {
        let obs = report.obs.as_ref().expect("--metrics-out implies --observe");
        std::fs::write(path, obs.metrics_string()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1)
        });
        eprintln!("wrote {}", path.display());
    }

    if args.json {
        print_json(&report);
        return;
    }

    println!("policy:                {}", report.policy.name());
    println!("epsilon:               {}", report.epsilon);
    println!("tuning time:           {:.6} simulated s", report.tuning_time());
    println!("full-execution time:   {:.6} simulated s", report.full_time());
    println!("autotuning speedup:    {:.2}x", report.speedup());
    println!("kernel-time speedup:   {:.2}x", report.kernel_time_speedup());
    println!("kernels skipped:       {:.1}%", 100.0 * report.skip_fraction());
    println!("mean prediction error: {:.2}%", 100.0 * report.mean_error());
    println!("comp-time pred error:  {:.2}%", 100.0 * report.mean_comp_error());
    println!("selection quality:     {:.1}%", 100.0 * report.selection_quality());

    let truth = report.true_times();
    let preds = report.predicted_times();
    let best = report.selected();
    let optimal = report.optimal();
    println!("\n{:<44} {:>12} {:>12}", "configuration", "true (s)", "predicted");
    for (i, c) in report.configs.iter().enumerate() {
        let mark = match (i == best, i == optimal) {
            (true, true) => "  <- selected (optimal)",
            (true, false) => "  <- selected",
            (false, true) => "  <- optimal",
            _ => "",
        };
        println!("{:<44} {:>12.6} {:>12.6}{}", c.name, truth[i], preds[i], mark);
    }

    if args.profile {
        println!("\ncritical-path kernel profile of the selected configuration:");
        // Re-run the selected configuration under full execution to print a
        // clean profile.
        let w = &workloads[best];
        let machine = MachineModel::stampede2(w.ranks(), 7, args.allocation).shared();
        let cfg = critter::sim::SimConfig::new(w.ranks()).with_backend(args.backend);
        let rep = critter::sim::run_simulation(cfg, machine, |ctx| {
            let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
            w.run(&mut env, false);
            env.finish().0
        });
        let winner = rep
            .outputs
            .iter()
            .max_by(|a, b| a.predicted_time.partial_cmp(&b.predicted_time).unwrap())
            .expect("at least one rank");
        println!("{:<28} {:>8} {:>14}", "kernel", "count", "path time (s)");
        for (label, count, time) in &winner.top_kernels {
            println!("{label:<28} {count:>8} {time:>14.6}");
        }
        println!("\nload imbalance (max/mean busy time): {:.3}", winner.imbalance());
    }
}

//! Minimal offline stand-in for the `serde_json` crate.
//!
//! Provides the subset the bench harness uses: [`Value`], [`Map`], the
//! [`json!`] macro for flat object literals, and [`to_string_pretty`].
//! No deserialization, no serde integration — just a well-formed JSON
//! writer for result artifacts.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values print without `.`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys sorted, matching serde_json's default `BTreeMap`).
    Object(Map),
}

/// A JSON object: string keys → values, iterated in sorted key order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: BTreeMap<String, Value>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }
}

/// Conversion into [`Value`] by reference — the `json!` macro takes every
/// interpolated expression by `&`, so only reference impls are needed.
pub trait IntoJson {
    /// Convert to a JSON value.
    fn into_json(self) -> Value;
}

impl IntoJson for &Value {
    fn into_json(self) -> Value {
        self.clone()
    }
}

impl IntoJson for &&str {
    fn into_json(self) -> Value {
        Value::String((*self).to_string())
    }
}

impl IntoJson for &String {
    fn into_json(self) -> Value {
        Value::String(self.clone())
    }
}

impl IntoJson for &bool {
    fn into_json(self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_into_json_num {
    ($($t:ty),*) => {$(
        impl IntoJson for &$t {
            fn into_json(self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
impl_into_json_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl IntoJson for &Vec<Value> {
    fn into_json(self) -> Value {
        Value::Array(self.clone())
    }
}

impl IntoJson for &Vec<f64> {
    fn into_json(self) -> Value {
        Value::Array(self.iter().map(|&x| Value::Number(x)).collect())
    }
}

impl<const N: usize> IntoJson for &[f64; N] {
    fn into_json(self) -> Value {
        Value::Array(self.iter().map(|&x| Value::Number(x)).collect())
    }
}

impl IntoJson for &&[f64] {
    fn into_json(self) -> Value {
        Value::Array(self.iter().map(|&x| Value::Number(x)).collect())
    }
}

/// Build a [`Value`] from a JSON-like literal. Supports `null`, nested
/// `[..]` / `{..}` literals with string-literal keys, and arbitrary
/// expressions for leaf values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::IntoJson::into_json(&$other) };
}

/// Error type for the writer (it cannot actually fail).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(x: f64) -> String {
    if x.is_finite() && x.fract() == 0.0 && x.abs() < 9.0e15 {
        format!("{}", x as i64)
    } else if x.is_finite() {
        format!("{x}")
    } else {
        // JSON has no Inf/NaN; serde_json emits null for non-finite floats.
        "null".to_string()
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => out.push_str(&number_to_string(*x)),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(out, item, indent + 1, pretty);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent + 1, pretty);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serialize with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, true);
    Ok(out)
}

/// Serialize compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, false);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let name = String::from("gemm");
        let v = json!({ "name": name, "time": 1.5, "count": 3u64, "ok": true });
        match &v {
            Value::Object(m) => {
                assert_eq!(m.get("name"), Some(&Value::String("gemm".into())));
                assert_eq!(m.get("time"), Some(&Value::Number(1.5)));
                assert_eq!(m.get("count"), Some(&Value::Number(3.0)));
                assert_eq!(m.get("ok"), Some(&Value::Bool(true)));
            }
            other => panic!("expected object, got {other:?}"),
        }
        // `name` was taken by reference — still usable.
        assert_eq!(name, "gemm");
    }

    #[test]
    fn pretty_output_is_valid_json() {
        let v = json!({ "a": [1.0, 2.0], "b": "x\"y" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": [\n"));
        assert!(s.contains("\\\"y\""));
        assert_eq!(to_string(&v).unwrap(), r#"{"a":[1,2],"b":"x\"y"}"#);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(number_to_string(5.0), "5");
        assert_eq!(number_to_string(1.25), "1.25");
        assert_eq!(number_to_string(f64::NAN), "null");
    }
}

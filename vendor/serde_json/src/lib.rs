//! Minimal offline stand-in for the `serde_json` crate.
//!
//! Provides the subset the workspace uses: [`Value`], [`Map`], the
//! [`json!`] macro for flat object literals, [`to_string_pretty`], and —
//! since the session/checkpoint layer needs to read its artifacts back —
//! a strict recursive-descent parser ([`from_str`]). Numbers parse through
//! `f64::from_str`, which is correctly rounded, so any float printed by the
//! writer's shortest-round-trip formatting restores to the identical bits.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values print without `.`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys sorted, matching serde_json's default `BTreeMap`).
    Object(Map),
}

/// A JSON object: string keys → values, iterated in sorted key order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: BTreeMap<String, Value>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Look up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.get_mut(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }

    /// Remove a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.entries.remove(key)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }
}

impl Value {
    /// The value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value under `key`, mutably, when this is an object.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(m) => m.get_mut(key),
            _ => None,
        }
    }

    /// The number as `f64`, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a `u64`, when this is a number that is a non-negative
    /// integer representable exactly in an `f64` (every count and 52-bit
    /// signature key this workspace serializes qualifies).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9.0e15 => Some(*x as u64),
            _ => None,
        }
    }

    /// The number as an `i64`, when this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(x) if x.fract() == 0.0 && x.abs() <= 9.0e15 => Some(*x as i64),
            _ => None,
        }
    }

    /// The string slice, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element vector, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The element vector, mutably, when this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The map, when this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The map, mutably, when this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Conversion into [`Value`] by reference — the `json!` macro takes every
/// interpolated expression by `&`, so only reference impls are needed.
pub trait IntoJson {
    /// Convert to a JSON value.
    fn into_json(self) -> Value;
}

impl IntoJson for &Value {
    fn into_json(self) -> Value {
        self.clone()
    }
}

impl IntoJson for &&str {
    fn into_json(self) -> Value {
        Value::String((*self).to_string())
    }
}

impl IntoJson for &String {
    fn into_json(self) -> Value {
        Value::String(self.clone())
    }
}

impl IntoJson for &bool {
    fn into_json(self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_into_json_num {
    ($($t:ty),*) => {$(
        impl IntoJson for &$t {
            fn into_json(self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
impl_into_json_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl IntoJson for &Vec<Value> {
    fn into_json(self) -> Value {
        Value::Array(self.clone())
    }
}

impl IntoJson for &Vec<f64> {
    fn into_json(self) -> Value {
        Value::Array(self.iter().map(|&x| Value::Number(x)).collect())
    }
}

impl<const N: usize> IntoJson for &[f64; N] {
    fn into_json(self) -> Value {
        Value::Array(self.iter().map(|&x| Value::Number(x)).collect())
    }
}

impl IntoJson for &&[f64] {
    fn into_json(self) -> Value {
        Value::Array(self.iter().map(|&x| Value::Number(x)).collect())
    }
}

/// Build a [`Value`] from a JSON-like literal. Supports `null`, nested
/// `[..]` / `{..}` literals with string-literal keys, and arbitrary
/// expressions for leaf values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::IntoJson::into_json(&$other) };
}

/// Error type shared by the writer (which cannot actually fail) and the
/// parser (which reports the byte offset and cause of the first syntax
/// error).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn at(offset: usize, what: &str) -> Self {
        Error { msg: format!("invalid JSON at byte {offset}: {what}") }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.msg.is_empty() {
            f.write_str("serde_json shim error")
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// Strict recursive-descent JSON parser.
///
/// Accepts exactly the grammar of RFC 8259 minus exotic escapes beyond the
/// standard set (`\" \\ \/ \b \f \n \r \t \uXXXX`). Numbers go through
/// `f64::from_str`, which is correctly rounded — any float the writer
/// printed in shortest-round-trip form parses back to the identical bits,
/// the property the checkpoint/restore layer's byte-identity contract
/// rests on.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at(p.pos, "trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(self.pos, &format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::at(self.pos, &format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::at(self.pos, "expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at(self.pos, "expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::at(self.pos, "expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain UTF-8 up to the next quote or escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::at(start, "invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::at(self.pos, "open escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::at(self.pos, "unpaired surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::at(self.pos, "invalid \\u escape"))?);
                        }
                        _ => return Err(Error::at(self.pos - 1, "unknown escape")),
                    }
                }
                _ => return Err(Error::at(self.pos, "unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::at(self.pos, "truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::at(self.pos, "non-hex \\u escape"))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| Error::at(self.pos, "non-hex \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at(start, "invalid number"))?;
        text.parse::<f64>().map(Value::Number).map_err(|_| Error::at(start, "invalid number"))
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(x: f64) -> String {
    if x.is_finite() && x.fract() == 0.0 && x.abs() < 9.0e15 {
        format!("{}", x as i64)
    } else if x.is_finite() {
        format!("{x}")
    } else {
        // JSON has no Inf/NaN; serde_json emits null for non-finite floats.
        "null".to_string()
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => out.push_str(&number_to_string(*x)),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(out, item, indent + 1, pretty);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent + 1, pretty);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serialize with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, true);
    Ok(out)
}

/// Serialize compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, false);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_nested_documents() {
        let inner = json!({ "nested": true, "s": "x\"y\\z\n" });
        let v = json!({ "a": [1.0, 2.5, -3.0], "b": inner, "c": Value::Null });
        let text = to_string(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(to_string(&back).unwrap(), text);
        assert_eq!(
            back.get("b").and_then(|b| b.get("nested")).and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(
            back.get("b").and_then(|b| b.get("s")).and_then(Value::as_str),
            Some("x\"y\\z\n")
        );
        assert!(back.get("c").map(Value::is_null).unwrap_or(false));
    }

    #[test]
    fn parser_restores_floats_bit_exactly() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            1e-300,
            f64::MAX,
            f64::MIN_POSITIVE,
            1.25,
            -9.007199254740993e15,
            2.2250738585072014e-308,
        ] {
            let text = number_to_string(x);
            let parsed = from_str(&text).unwrap();
            match parsed {
                Value::Number(y) => {
                    assert_eq!(y.to_bits(), x.to_bits(), "{x} reprinted as {text} parsed to {y}")
                }
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        let v = from_str(r#""\u0041\u00e9\ud83d\ude00\t""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀\t"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "nul",
            "1.2.3",
            "\"open",
            "\"\\q\"",
            "\"\\ud800\"",
            "[] []",
            "{\"a\":1}x",
            "--1",
            "+1",
            "[01and]",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn parser_accepts_whitespace_and_empty_containers() {
        let v = from_str(" \t\n{ \"a\" : [ ] , \"b\" : { } } \r\n").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_array).map(Vec::len), Some(0));
        assert!(v.get("b").and_then(Value::as_object).map(Map::is_empty).unwrap_or(false));
    }

    #[test]
    fn value_accessors_classify_numbers() {
        let v = from_str("[3, -4, 2.5, 9007199254740993]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(3));
        assert_eq!(items[0].as_i64(), Some(3));
        assert_eq!(items[1].as_u64(), None);
        assert_eq!(items[1].as_i64(), Some(-4));
        assert_eq!(items[2].as_u64(), None);
        assert_eq!(items[2].as_f64(), Some(2.5));
        // Above 2^53 the float is not a faithful integer; still readable as f64.
        assert!(items[3].as_f64().is_some());
    }

    #[test]
    fn json_macro_builds_objects() {
        let name = String::from("gemm");
        let v = json!({ "name": name, "time": 1.5, "count": 3u64, "ok": true });
        match &v {
            Value::Object(m) => {
                assert_eq!(m.get("name"), Some(&Value::String("gemm".into())));
                assert_eq!(m.get("time"), Some(&Value::Number(1.5)));
                assert_eq!(m.get("count"), Some(&Value::Number(3.0)));
                assert_eq!(m.get("ok"), Some(&Value::Bool(true)));
            }
            other => panic!("expected object, got {other:?}"),
        }
        // `name` was taken by reference — still usable.
        assert_eq!(name, "gemm");
    }

    #[test]
    fn pretty_output_is_valid_json() {
        let v = json!({ "a": [1.0, 2.0], "b": "x\"y" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": [\n"));
        assert!(s.contains("\\\"y\""));
        assert_eq!(to_string(&v).unwrap(), r#"{"a":[1,2],"b":"x\"y"}"#);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(number_to_string(5.0), "5");
        assert_eq!(number_to_string(1.25), "1.25");
        assert_eq!(number_to_string(f64::NAN), "null");
    }
}

//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the API this workspace's property tests use:
//! the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), range and tuple strategies, [`collection::vec`], `prop_map`,
//! `any::<bool>()`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-case RNG (seeded from the test name and case index), and failing
//! cases are reported without shrinking. That trades minimal
//! counterexamples for zero dependencies — acceptable for an offline
//! build environment.
//!
//! Two upstream behaviors *are* supported because the workspace's CI
//! relies on them:
//!
//! * the `PROPTEST_CASES` environment variable overrides the default
//!   case count (explicit `with_cases(n)` still pins it, as upstream);
//! * failing case seeds persist to `proptest-regressions/<file>.txt`
//!   under the test crate's manifest directory, and persisted seeds are
//!   replayed before fresh cases on subsequent runs. Committing those
//!   files makes failures replay deterministically in CI.

use std::fmt::Debug;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Why a single generated test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — try another input.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable via the `PROPTEST_CASES` environment variable
    /// (upstream semantics: the env var changes the *default*; an explicit
    /// `with_cases(n)` still pins the count).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, O, F>
    where
        Self: Sized,
    {
        Map { strat: self, f, _out: std::marker::PhantomData }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, O, F> {
    strat: S,
    f: F,
    _out: std::marker::PhantomData<fn() -> O>,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, O, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.strat.sample(rng))
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + Copy + Debug,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy for `Self`.
    type Strategy: Strategy<Value = Self>;
    /// Construct the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Uniform `bool` strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_range(0u64..2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T` (`any::<bool>()` & co).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` strategy with element strategy `elem` and length range `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The deterministic case runner behind [`proptest!`]-generated tests.
pub mod runner {
    use super::*;
    use std::io::Write as _;
    use std::path::{Path, PathBuf};

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// SplitMix64 finalizer: decorrelates sequential attempt indexes into
    /// well-spread per-case RNG seeds.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The RNG seed of one generated case: a pure function of the test name
    /// and the attempt index, so a failing case is identified by its seed
    /// alone and can be replayed from the regression file.
    fn case_seed(base: u64, attempt: u64) -> u64 {
        mix(base ^ attempt.wrapping_mul(0x2545_f491_4f6c_dd1d))
    }

    /// Regression-file location of a `proptest!` block, captured at the macro
    /// call site so the file lands in the *test* crate's source tree (as
    /// upstream: `proptest-regressions/<source file stem>.txt`).
    #[derive(Debug, Clone, Copy)]
    pub struct Persistence {
        /// `env!("CARGO_MANIFEST_DIR")` of the crate defining the test.
        pub manifest_dir: &'static str,
        /// `file!()` of the `proptest!` invocation.
        pub source_file: &'static str,
    }

    impl Persistence {
        fn path(&self) -> PathBuf {
            let stem =
                Path::new(self.source_file).file_stem().and_then(|s| s.to_str()).unwrap_or("tests");
            Path::new(self.manifest_dir).join("proptest-regressions").join(format!("{stem}.txt"))
        }

        /// Seeds previously persisted for `name`, oldest first.
        fn load(&self, name: &str) -> Vec<u64> {
            let Ok(text) = std::fs::read_to_string(self.path()) else {
                return Vec::new();
            };
            text.lines()
                .filter_map(|line| {
                    let mut parts = line.split_whitespace();
                    (parts.next() == Some("cc") && parts.next() == Some(name))
                        .then(|| parts.next())
                        .flatten()
                        .and_then(|s| s.strip_prefix("0x"))
                        .and_then(|s| u64::from_str_radix(s, 16).ok())
                })
                .collect()
        }

        /// Append the seed of a fresh failure (idempotent: already-recorded
        /// seeds are not duplicated). Best-effort — persistence must never
        /// mask the original test failure.
        fn save(&self, name: &str, seed: u64) {
            if self.load(name).contains(&seed) {
                return;
            }
            let path = self.path();
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let new_file = !path.exists();
            if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                if new_file {
                    let _ = writeln!(
                        f,
                        "# Seeds for failure cases proptest has generated in the past.\n\
                         # It is recommended to check this file in to source control so that\n\
                         # everyone who runs the test benefits from these saved cases.\n\
                         # Format: cc <test name> 0x<case seed>"
                    );
                }
                let _ = writeln!(f, "cc {name} {seed:#018x}");
            }
        }
    }

    /// One attempt at the given seed. `Ok(true)` = accepted, `Ok(false)` =
    /// rejected by `prop_assume!`; `Err` carries the failure message plus the
    /// rendered input.
    fn run_case<S: Strategy>(
        seed: u64,
        strat: &S,
        f: &impl Fn(S::Value) -> TestCaseResult,
    ) -> Result<bool, (String, String)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = strat.sample(&mut rng);
        let shown = format!("{value:?}");
        match f(value) {
            Ok(()) => Ok(true),
            Err(TestCaseError::Reject(_)) => Ok(false),
            Err(TestCaseError::Fail(msg)) => Err((msg, shown)),
        }
    }

    /// Run `f` on `config.cases` accepted inputs drawn from `strat`, without
    /// regression persistence (direct callers; the [`crate::proptest!`] macro
    /// uses [`run_persisted`]).
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failing case,
    /// printing the generated input. Rejections (`prop_assume!`) are retried
    /// up to a bounded number of attempts.
    pub fn run<S: Strategy>(
        name: &str,
        config: &ProptestConfig,
        strat: &S,
        f: impl Fn(S::Value) -> TestCaseResult,
    ) {
        run_persisted(name, None, config, strat, f);
    }

    /// [`run`], replaying any seeds persisted under `persist` first and
    /// recording the seed of a fresh failure before panicking.
    pub fn run_persisted<S: Strategy>(
        name: &str,
        persist: Option<&Persistence>,
        config: &ProptestConfig,
        strat: &S,
        f: impl Fn(S::Value) -> TestCaseResult,
    ) {
        // Persisted failures replay before any fresh generation: a fix is
        // validated against the exact historical counterexample.
        if let Some(p) = persist {
            for seed in p.load(name) {
                if let Err((msg, shown)) = run_case(seed, strat, &f) {
                    panic!(
                        "proptest '{name}' failed (persisted regression {seed:#018x}): \
                         {msg}\n    input: {shown}"
                    );
                }
            }
        }
        let base = fnv1a(name);
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        let max_attempts = (config.cases as u64).max(1) * 40;
        while accepted < config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "proptest '{name}': too many rejected cases ({attempts} attempts for {} accepted)",
                accepted
            );
            let seed = case_seed(base, attempts);
            match run_case(seed, strat, &f) {
                Ok(true) => accepted += 1,
                Ok(false) => continue,
                Err((msg, shown)) => {
                    if let Some(p) = persist {
                        p.save(name, seed);
                    }
                    panic!("proptest '{name}' failed: {msg}\n    input: {shown}")
                }
            }
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Generate deterministic property tests; see the crate docs for the
/// supported subset of upstream syntax.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ($($strat,)*);
                let persistence = $crate::runner::Persistence {
                    manifest_dir: env!("CARGO_MANIFEST_DIR"),
                    source_file: file!(),
                };
                $crate::runner::run_persisted(
                    stringify!($name),
                    Some(&persistence),
                    &config,
                    &strategies,
                    |($($arg,)*)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n    both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Reject the current case (resampled, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_respects_length(xs in collection::vec(0u64..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn map_and_assume_work(n in 1usize..20) {
            prop_assume!(n % 2 == 0);
            let doubled = (1usize..20).prop_map(|v| v * 2);
            let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
            use rand::SeedableRng;
            let v = doubled.sample(&mut rng);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_case_panics_with_input() {
        crate::runner::run("always_fails", &ProptestConfig::with_cases(4), &(0u64..10,), |(_x,)| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }

    #[test]
    fn with_cases_pins_count_regardless_of_env() {
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }

    #[test]
    fn failure_seed_persists_and_replays() {
        let dir = std::env::temp_dir().join(format!("shim-proptest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest: &'static str = Box::leak(dir.to_str().unwrap().to_string().into_boxed_str());
        let persist =
            crate::runner::Persistence { manifest_dir: manifest, source_file: "tests/demo.rs" };

        // A test failing on large inputs records the failing case's seed...
        let fails_large = |(x,): (u64,)| {
            if x >= 5 {
                Err(TestCaseError::Fail(format!("too big: {x}")))
            } else {
                Ok(())
            }
        };
        let first = std::panic::catch_unwind(|| {
            crate::runner::run_persisted(
                "persist_demo",
                Some(&persist),
                &ProptestConfig::with_cases(64),
                &(0u64..10,),
                fails_large,
            )
        });
        assert!(first.is_err(), "the property must fail");
        let file = dir.join("proptest-regressions").join("demo.txt");
        let text = std::fs::read_to_string(&file).expect("regression file written");
        assert!(text.lines().any(|l| l.starts_with("cc persist_demo 0x")), "{text}");

        // ...and the persisted seed replays (and still fails) before any
        // fresh generation, even with zero fresh cases requested.
        let replay = std::panic::catch_unwind(|| {
            crate::runner::run_persisted(
                "persist_demo",
                Some(&persist),
                &ProptestConfig::with_cases(1),
                &(0u64..10,),
                |(x,)| {
                    if x >= 5 {
                        Err(TestCaseError::Fail("still too big".into()))
                    } else {
                        Ok(())
                    }
                },
            )
        });
        let payload = replay.expect_err("persisted seed must replay");
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("persisted regression"), "{msg}");

        // A second identical failure does not duplicate the line.
        let _ = std::panic::catch_unwind(|| {
            crate::runner::run_persisted(
                "persist_demo",
                Some(&persist),
                &ProptestConfig::with_cases(64),
                &(0u64..10,),
                fails_large,
            )
        });
        let text2 = std::fs::read_to_string(&file).unwrap();
        let count = text2.lines().filter(|l| l.starts_with("cc persist_demo")).count();
        assert!(count >= 1);
        let seeds: std::collections::HashSet<&str> = text2
            .lines()
            .filter(|l| l.starts_with("cc persist_demo"))
            .filter_map(|l| l.split_whitespace().nth(2))
            .collect();
        assert_eq!(seeds.len(), count, "no duplicated seeds: {text2}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

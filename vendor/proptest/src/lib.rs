//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the API this workspace's property tests use:
//! the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), range and tuple strategies, [`collection::vec`], `prop_map`,
//! `any::<bool>()`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name), and failing cases are
//! reported without shrinking. That trades minimal counterexamples for
//! zero dependencies — acceptable for an offline build environment.

use std::fmt::Debug;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Why a single generated test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — try another input.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, O, F>
    where
        Self: Sized,
    {
        Map { strat: self, f, _out: std::marker::PhantomData }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, O, F> {
    strat: S,
    f: F,
    _out: std::marker::PhantomData<fn() -> O>,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, O, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.strat.sample(rng))
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + Copy + Debug,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy for `Self`.
    type Strategy: Strategy<Value = Self>;
    /// Construct the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Uniform `bool` strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_range(0u64..2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T` (`any::<bool>()` & co).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` strategy with element strategy `elem` and length range `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The deterministic case runner behind [`proptest!`]-generated tests.
pub mod runner {
    use super::*;

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Run `f` on `config.cases` accepted inputs drawn from `strat`.
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failing case,
    /// printing the generated input. Rejections (`prop_assume!`) are retried
    /// up to a bounded number of attempts.
    pub fn run<S: Strategy>(
        name: &str,
        config: &ProptestConfig,
        strat: &S,
        f: impl Fn(S::Value) -> TestCaseResult,
    ) {
        let mut rng = StdRng::seed_from_u64(fnv1a(name));
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        let max_attempts = (config.cases as u64).max(1) * 40;
        while accepted < config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "proptest '{name}': too many rejected cases ({attempts} attempts for {} accepted)",
                accepted
            );
            let value = strat.sample(&mut rng);
            let shown = format!("{value:?}");
            match f(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed: {msg}\n    input: {shown}")
                }
            }
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Generate deterministic property tests; see the crate docs for the
/// supported subset of upstream syntax.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ($($strat,)*);
                $crate::runner::run(
                    stringify!($name),
                    &config,
                    &strategies,
                    |($($arg,)*)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n    both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Reject the current case (resampled, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_respects_length(xs in collection::vec(0u64..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn map_and_assume_work(n in 1usize..20) {
            prop_assume!(n % 2 == 0);
            let doubled = (1usize..20).prop_map(|v| v * 2);
            let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
            use rand::SeedableRng;
            let v = doubled.sample(&mut rng);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_case_panics_with_input() {
        crate::runner::run("always_fails", &ProptestConfig::with_cases(4), &(0u64..10,), |(_x,)| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }
}

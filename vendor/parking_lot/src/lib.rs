//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of the `parking_lot` API it actually uses: a non-poisoning
//! [`Mutex`] and a [`Condvar`] with `wait_for`. Semantics match `parking_lot`
//! where the simulator depends on them:
//!
//! * locking never returns a `Result` — a panic while holding the lock does
//!   **not** poison it (rank panics must leave the sim core usable so peers
//!   can observe the poison flag and unwind cleanly);
//! * `Condvar::wait_for` takes `&mut MutexGuard` and reports timeouts through
//!   [`WaitTimeoutResult::timed_out`], which the deadlock detector relies on.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock that does not poison on panic.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily move the std guard out
    // while re-waiting; it is `Some` at every point user code can observe.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` iff the wait ended by timing out rather than a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_is_not_poisoned_by_panics() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                let r = cv2.wait_for(&mut g, Duration::from_secs(5));
                assert!(!r.timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}

//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses — `StdRng::seed_from_u64` plus
//! `Rng::gen_range` / `Rng::gen` — with a deterministic xoshiro256++ core
//! seeded through SplitMix64. The exact stream differs from upstream
//! `StdRng` (ChaCha12), which is fine: callers only require seeded
//! determinism, never golden values.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample a value of type `Self` from a uniform range. Internal helper trait
/// mirroring `rand::distributions::uniform::SampleUniform` at the call sites
/// the workspace uses.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// The raw generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore> Rng for R {}

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 per
                // draw, irrelevant for test-input generation.
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Standard seedable generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// `rand::rngs` module mirror.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_range_is_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Workspace-level integration tests: the full stack (machine model →
//! simulator → dense kernels → Critter interception → workloads → autotuner)
//! exercised end to end, checking the paper's qualitative claims at smoke
//! scale.

use critter::prelude::*;

/// All four factorization workloads produce numerically correct results under
/// full execution (the substrate is real, not mocked).
#[test]
fn all_workloads_factor_correctly() {
    use critter::algs::{
        candmc_qr::CandmcQr, capital::CapitalCholesky, slate_chol::SlateCholesky, slate_qr::SlateQr,
    };
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(CapitalCholesky { n: 32, block: 8, strategy: 2, ranks: 8 }),
        Box::new(SlateCholesky { n: 64, tile: 16, lookahead: 1, pr: 2, pc: 2 }),
        Box::new(CandmcQr { m: 64, n: 16, block: 4, pr: 2, pc: 2 }),
        Box::new(SlateQr { m: 64, n: 16, nb: 8, inner: 4, pr: 2, pc: 2 }),
    ];
    for w in workloads {
        let machine = MachineModel::test_exact(w.ranks()).shared();
        let name = w.name();
        let outs = run_simulation(SimConfig::new(w.ranks()), machine, |ctx| {
            let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
            let out = w.run(&mut env, true);
            let _ = env.finish();
            out
        });
        for o in &outs.outputs {
            let r = o.residual.expect("verification requested");
            assert!(r < 1e-8, "{name}: residual {r}");
        }
    }
}

/// Every selective policy completes a tuning sweep and produces finite,
/// sensible metrics on every space.
#[test]
fn every_policy_tunes_every_space() {
    for space in TuningSpace::ALL {
        for policy in ExecutionPolicy::ALL_SELECTIVE {
            let mut opts = TuningOptions::new(policy, 0.5).with_test_machine();
            opts.reset_between_configs = space.resets_between_configs();
            let report = Autotuner::new(opts).tune(&space.smoke());
            assert!(report.tuning_time() > 0.0, "{} {}", space.name(), policy.name());
            assert!(report.mean_error().is_finite());
            assert!(report.selection_quality() > 0.0 && report.selection_quality() <= 1.0 + 1e-12);
        }
    }
}

/// The headline qualitative result (§VI-B): selective execution accelerates
/// autotuning, and eager propagation is the fastest method at loose ε on a
/// bulk-synchronous Cholesky. A single noisy sweep can land either side of a
/// small timing margin, so the claim is checked on the mean over three node
/// allocations (mirroring the paper's repeat-per-allocation protocol) plus
/// the noise-independent structural fact that eager skips at least as many
/// kernels as conditional on every allocation.
#[test]
fn eager_beats_conditional_beats_full_on_capital() {
    let space = TuningSpace::CapitalCholesky;
    let ws = space.smoke();
    let run = |policy, alloc: u64| {
        let mut opts = TuningOptions::new(policy, 1.0);
        opts.reset_between_configs = false;
        opts.allocation = alloc;
        Autotuner::new(opts).tune(&ws)
    };
    let mut eager_total = 0.0;
    let mut cond_total = 0.0;
    for alloc in 0..3 {
        let cond = run(ExecutionPolicy::ConditionalExecution, alloc);
        let eager = run(ExecutionPolicy::EagerPropagation, alloc);
        assert!(cond.speedup() > 1.0, "conditional speedup {} on alloc {alloc}", cond.speedup());
        assert!(
            eager.skip_fraction() >= cond.skip_fraction(),
            "eager must not skip less than conditional on alloc {alloc}: {} vs {}",
            eager.skip_fraction(),
            cond.skip_fraction()
        );
        eager_total += eager.tuning_time();
        cond_total += cond.tuning_time();
    }
    assert!(
        eager_total < cond_total,
        "eager mean tuning time {} vs conditional {}",
        eager_total / 3.0,
        cond_total / 3.0
    );
}

/// Tightening ε systematically reduces the prediction error (§VI-C) down to
/// the environment noise floor.
#[test]
fn error_decreases_with_epsilon() {
    let space = TuningSpace::SlateCholesky;
    let ws = space.smoke();
    let err_at = |eps: f64| {
        let mut opts = TuningOptions::new(ExecutionPolicy::ConditionalExecution, eps);
        opts.reset_between_configs = true;
        opts.reps = 2;
        Autotuner::new(opts).tune(&ws).mean_error()
    };
    let loose = err_at(2.0);
    let tight = err_at(1.0 / 256.0);
    assert!(
        tight <= loose + 0.02,
        "error should not grow as ε tightens: loose {loose}, tight {tight}"
    );
}

/// A-priori propagation's offline pass prevents speedup relative to
/// conditional execution (§VI-B, Fig. 4a discussion).
#[test]
fn apriori_slower_than_conditional() {
    let space = TuningSpace::CandmcQr;
    let ws = space.smoke();
    let run = |policy| {
        let mut opts = TuningOptions::new(policy, 0.5).with_test_machine();
        opts.reset_between_configs = true;
        Autotuner::new(opts).tune(&ws)
    };
    let cond = run(ExecutionPolicy::ConditionalExecution);
    let apriori = run(ExecutionPolicy::APrioriPropagation);
    assert!(apriori.tuning_time() > cond.tuning_time());
}

/// Critter selects a near-optimal configuration (§VI-C: ≥ 99% of the optimal
/// configuration's performance in the paper; we require ≥ 90% at smoke scale
/// where configurations are closer together).
#[test]
fn selection_quality_is_high() {
    for space in [TuningSpace::SlateCholesky, TuningSpace::CandmcQr] {
        let mut opts = TuningOptions::new(ExecutionPolicy::OnlinePropagation, 0.25);
        opts.reset_between_configs = space.resets_between_configs();
        opts.reps = 2;
        let report = Autotuner::new(opts).tune(&space.smoke());
        assert!(
            report.selection_quality() > 0.9,
            "{}: quality {}",
            space.name(),
            report.selection_quality()
        );
    }
}

/// Simulated tuning runs are bit-reproducible (deterministic counter-based
/// noise regardless of thread scheduling).
#[test]
fn tuning_is_deterministic() {
    let run = || {
        let mut opts =
            TuningOptions::new(ExecutionPolicy::OnlinePropagation, 0.25).with_test_machine();
        opts.reset_between_configs = true;
        let r = Autotuner::new(opts).tune(&TuningSpace::SlateQr.smoke());
        (r.tuning_time(), r.full_time(), r.per_config_error())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

/// Different node allocations produce different timings (the reason the paper
/// repeats every experiment on two allocations).
#[test]
fn allocations_perturb_results() {
    let run = |alloc: u64| {
        let mut opts = TuningOptions::new(ExecutionPolicy::Full, 0.0).with_test_machine();
        opts.allocation = alloc;
        Autotuner::new(opts).tune(&TuningSpace::SlateCholesky.smoke()).full_time()
    };
    assert_ne!(run(0), run(1));
}

/// The §VIII extrapolation extension accelerates CANDMC QR (the workload the
/// paper names) without blowing up prediction error.
#[test]
fn extrapolation_helps_candmc_qr() {
    let space = TuningSpace::CandmcQr;
    let ws = space.smoke();
    let run = |extrapolate: bool| {
        let mut opts =
            TuningOptions::new(ExecutionPolicy::OnlinePropagation, 0.25).with_test_machine();
        opts.reset_between_configs = true;
        opts.extrapolate = extrapolate;
        Autotuner::new(opts).tune(&ws)
    };
    let base = run(false);
    let ext = run(true);
    assert!(
        ext.skip_fraction() >= base.skip_fraction(),
        "extrapolation must not skip less: {} vs {}",
        ext.skip_fraction(),
        base.skip_fraction()
    );
    assert!(ext.mean_error() < 0.5, "error stays bounded: {}", ext.mean_error());
}

/// Search strategies: successive halving pays less than exhaustive while
/// choosing a configuration whose true time is competitive.
#[test]
fn successive_halving_is_cheaper_than_exhaustive() {
    use critter::autotune::{search, SearchStrategy};
    let space = TuningSpace::SlateQr;
    let ws = space.smoke();
    let mut opts =
        TuningOptions::new(ExecutionPolicy::OnlinePropagation, 0.0625).with_test_machine();
    opts.reset_between_configs = true;
    let ex = search(&opts, &ws, &SearchStrategy::Exhaustive);
    let rnd = search(&opts, &ws, &SearchStrategy::Random { samples: 2, seed: 3 });
    assert!(rnd.tuning_time < ex.tuning_time, "2 of 4 evaluations must cost less");
    assert!(rnd.best < ws.len());
}

/// Traced full runs account for every interception and expose the per-kernel
/// critical-path profile through the report.
#[test]
fn trace_and_path_profile_cover_a_full_run() {
    use critter::algs::slate_chol::SlateCholesky;
    let w = SlateCholesky { n: 64, tile: 16, lookahead: 0, pr: 2, pc: 2 };
    let machine = MachineModel::test_exact(w.ranks()).shared();
    let rep = run_simulation(SimConfig::new(w.ranks()), machine, |ctx| {
        let mut env = CritterEnv::new(ctx, CritterConfig::full().with_trace(), KernelStore::new());
        w.run(&mut env, false);
        env.finish().0
    });
    for r in &rep.outputs {
        assert_eq!(r.trace.len() as u64, r.kernels_executed);
        assert!(!r.top_kernels.is_empty(), "path profile must be populated");
        let path_total: f64 = r.top_kernels.iter().map(|(_, _, t)| t).sum();
        assert!(path_total > 0.0);
        assert!(r.imbalance() >= 1.0);
    }
}

//! Quickstart: profile a toy bulk-synchronous program with Critter and watch
//! selective execution kick in.
//!
//! The program alternates a `gemm` kernel with an allreduce on a simulated
//! 8-rank machine with cluster-level noise. Under *conditional execution*
//! with ε = 0.25, Critter samples each kernel until its 95% confidence
//! interval is tight enough, then stops executing it and substitutes the
//! model mean — the run gets faster while the predicted critical-path time
//! stays accurate.
//!
//! Run: `cargo run --example quickstart --release`

use critter::prelude::*;

fn main() {
    let ranks = 8;
    let steps = 40;

    // A full-execution reference run (the red line of the paper's figures).
    let full = profile(ranks, steps, CritterConfig::full());
    // The same program under selective execution.
    let selective =
        profile(ranks, steps, CritterConfig::new(ExecutionPolicy::ConditionalExecution, 0.25));

    println!("toy program: {steps} iterations of gemm + allreduce on {ranks} ranks\n");
    println!("{:<26} {:>14} {:>14}", "", "full", "selective");
    println!("{:<26} {:>14.6} {:>14.6}", "simulated makespan (s)", full.0, selective.0);
    println!("{:<26} {:>14.6} {:>14.6}", "predicted path time (s)", full.1, selective.1);
    println!("{:<26} {:>14} {:>14}", "kernels executed", full.2, selective.2);
    println!("{:<26} {:>14} {:>14}", "kernels skipped", full.3, selective.3);
    let err = (selective.1 - full.0).abs() / full.0;
    println!(
        "\nselective run was {:.2}x faster and predicted the full makespan within {:.2}%",
        full.0 / selective.0,
        100.0 * err
    );
}

/// Run the toy program under `cfg`; returns
/// (makespan, predicted time, executed, skipped).
fn profile(ranks: usize, steps: usize, cfg: CritterConfig) -> (f64, f64, u64, u64) {
    let machine =
        MachineModel::new(MachineParams::stampede2_knl(), NoiseParams::cluster(), ranks, 42, 0)
            .shared();
    let report = run_simulation(SimConfig::new(ranks), machine, move |ctx: &mut RankCtx| {
        let mut env = CritterEnv::new(ctx, cfg.clone(), KernelStore::new());
        let world = env.world();
        let n = 96;
        for _ in 0..steps {
            // One blocked matmul worth of flops per step...
            env.kernel(ComputeOp::Gemm, n, n, n, 2.0 * (n as f64).powi(3), || {});
            // ...then a 4 KiB allreduce.
            env.allreduce(&world, ReduceOp::Sum, &[1.0; 512]);
        }
        env.finish().0
    });
    let elapsed = report.rank_times.iter().copied().fold(0.0, f64::max);
    let predicted = report.outputs.iter().map(|r| r.predicted_time).fold(0.0, f64::max);
    let executed: u64 = report.outputs.iter().map(|r| r.kernels_executed).sum();
    let skipped: u64 = report.outputs.iter().map(|r| r.kernels_skipped).sum();
    (elapsed, predicted, executed, skipped)
}

//! Composing Critter with different configuration-space search strategies
//! (§VI-A: "our framework can be applied to accelerate any configuration-space
//! search strategy"): exhaustive search, seeded random subsampling, and
//! successive halving that tightens the confidence tolerance round by round.
//! Finishes with a traced profile of the chosen configuration.
//!
//! Run: `cargo run --example search_strategies --release`

use critter::autotune::{search, SearchStrategy, TuningOptions};
use critter::prelude::*;

fn main() {
    let space = TuningSpace::SlateCholesky;
    let workloads = space.smoke();
    let mut opts = TuningOptions::new(ExecutionPolicy::OnlinePropagation, 0.125);
    opts.reset_between_configs = space.resets_between_configs();

    println!("searching {} ({} configurations)\n", space.name(), workloads.len());
    println!(
        "{:<22} {:>12} {:>13} {:>9} {:>8}",
        "strategy", "evaluations", "tuning time", "speedup", "winner"
    );
    let strategies: [(&str, SearchStrategy); 3] = [
        ("exhaustive", SearchStrategy::Exhaustive),
        ("random (2 samples)", SearchStrategy::Random { samples: 2, seed: 42 }),
        ("successive halving", SearchStrategy::SuccessiveHalving { eta: 2 }),
    ];
    let mut winner = 0;
    for (name, strategy) in &strategies {
        let out = search(&opts, &workloads, strategy);
        println!(
            "{:<22} {:>12} {:>13.6} {:>8.2}x {:>8}",
            name,
            out.evaluations(),
            out.tuning_time,
            out.speedup(),
            out.best
        );
        if *name == "exhaustive" {
            winner = out.best;
        }
    }

    // Trace the winning configuration: the per-kernel profile of one run.
    println!("\ntraced kernel profile of {} (rank 0):\n", workloads[winner].name());
    let w = &workloads[winner];
    let machine = MachineModel::stampede2(w.ranks(), 5, 0).shared();
    let report = run_simulation(SimConfig::new(w.ranks()), machine, |ctx| {
        let cfg = CritterConfig::new(ExecutionPolicy::OnlinePropagation, 0.125).with_trace();
        let mut env = CritterEnv::new(ctx, cfg, KernelStore::new());
        w.run(&mut env, false);
        env.finish().0
    });
    print!("{}", report.outputs[0].trace.render(8));
    println!(
        "\n{} events recorded, {:.0}% skipped",
        report.outputs[0].trace.len(),
        100.0 * report.outputs[0].trace.skip_fraction()
    );
}

//! Autotune Capital's recursive 3D-grid Cholesky across block sizes and
//! base-case strategies — the paper's first case study, at smoke scale —
//! comparing all five selective-execution policies at a fixed tolerance.
//!
//! Run: `cargo run --example cholesky_tuning --release`

use critter::prelude::*;

fn main() {
    let space = TuningSpace::CapitalCholesky;
    let workloads = space.smoke();
    let epsilon = 0.25;

    println!("tuning {} configurations of {}, ε = {epsilon}\n", workloads.len(), space.name());
    println!(
        "{:<24} {:>12} {:>12} {:>9} {:>10} {:>9}",
        "policy", "tuning time", "full time", "speedup", "mean err", "quality"
    );
    for policy in ExecutionPolicy::ALL_SELECTIVE {
        let mut opts = TuningOptions::new(policy, epsilon);
        opts.reset_between_configs = space.resets_between_configs();
        let report = Autotuner::new(opts).tune(&workloads);
        println!(
            "{:<24} {:>12.5} {:>12.5} {:>8.2}x {:>9.2}% {:>9.3}",
            policy.name(),
            report.tuning_time(),
            report.full_time(),
            report.speedup(),
            100.0 * report.mean_error(),
            report.selection_quality(),
        );
    }

    // Show what the tuner actually picks.
    let opts =
        TuningOptions::new(ExecutionPolicy::OnlinePropagation, epsilon).with_persist_models(true);
    let report = Autotuner::new(opts).tune(&workloads);
    let truth = report.true_times();
    let preds = report.predicted_times();
    println!("\nper-configuration results (online propagation):");
    for (i, c) in report.configs.iter().enumerate() {
        let marker = if i == report.selected() { " <- selected" } else { "" };
        println!("  {:<34} true {:.5}s  predicted {:.5}s{}", c.name, truth[i], preds[i], marker);
    }
    println!(
        "\nselected configuration achieves {:.1}% of the optimum's performance",
        100.0 * report.selection_quality()
    );
}

//! The accuracy/speed trade-off at the heart of the paper: sweep the
//! confidence tolerance ε for one workload (SLATE tile Cholesky) and watch
//! autotuning speedup fall and prediction accuracy rise as ε tightens —
//! "prediction accuracy can be systematically improved by incrementally
//! decreasing the confidence tolerance" (§III-A).
//!
//! Run: `cargo run --example selective_execution --release`

use critter::prelude::*;

fn main() {
    let space = TuningSpace::SlateCholesky;
    let workloads = space.smoke();
    println!(
        "selective execution on {} ({} configurations), online propagation\n",
        space.name(),
        workloads.len()
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "epsilon", "speedup", "skip frac", "mean err", "comp err"
    );
    for k in 0..=8 {
        let epsilon = 1.0 / (1u64 << k) as f64;
        let mut opts = TuningOptions::new(ExecutionPolicy::OnlinePropagation, epsilon);
        opts.reset_between_configs = space.resets_between_configs();
        let report = Autotuner::new(opts).tune(&workloads);
        println!(
            "{:>10.5} {:>9.2}x {:>11.1}% {:>11.2}% {:>11.2}%",
            epsilon,
            report.speedup(),
            100.0 * report.skip_fraction(),
            100.0 * report.mean_error(),
            100.0 * report.mean_comp_error(),
        );
    }
    println!(
        "\nLoose tolerances skip aggressively (fast tuning, more error); tight\n\
         tolerances approach full execution (slow tuning, noise-floor error)."
    );
}

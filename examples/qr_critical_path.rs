//! Online critical-path analysis of a distributed QR factorization: run
//! CANDMC-style 2D QR under full execution across grid shapes and compare the
//! measured critical-path costs against the paper's analytic BSP model
//! (§V-B) — who wins and where the crossover falls should match.
//!
//! Run: `cargo run --example qr_critical_path --release`

use critter::algs::candmc_qr::CandmcQr;
use critter::algs::Workload;
use critter::prelude::*;

fn main() {
    let (m, n, b) = (256, 32, 4);
    println!("CANDMC QR {m}x{n}, block {b}: measured critical path vs BSP model\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} | {:>10} {:>12} {:>12}",
        "grid", "syncs", "words", "flops", "exec time", "bsp S", "bsp W", "bsp F"
    );
    for (pr, pc) in [(16usize, 1usize), (8, 2), (4, 4), (2, 8)] {
        let w = CandmcQr { m, n, block: b, pr, pc };
        let machine = MachineModel::new(
            MachineParams::stampede2_knl(),
            NoiseParams::cluster(),
            w.ranks(),
            7,
            0,
        )
        .shared();
        let wl = w.clone();
        let report =
            run_simulation(SimConfig::new(w.ranks()), machine, move |ctx: &mut RankCtx| {
                let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
                wl.run(&mut env, false);
                env.finish().0
            });
        let path = report
            .outputs
            .iter()
            .fold(critter::core::PathMetrics::default(), |acc, r| acc.max(r.path));
        let elapsed = report.rank_times.iter().copied().fold(0.0, f64::max);
        let bsp = critter::bsp::candmc_qr(m, n, pr, pc, b);
        println!(
            "{:<10} {:>10.0} {:>12.0} {:>12.3e} {:>12.6} | {:>10.0} {:>12.0} {:>12.3e}",
            format!("{pr}x{pc}"),
            path.syncs,
            path.comm_words,
            path.flops,
            elapsed,
            bsp.supersteps,
            bsp.words,
            bsp.flops
        );
    }
    println!(
        "\nTall grids cut the m·n/p_r bandwidth term but serialize the panel tree;\n\
         the measured path costs should move the same way the BSP columns do."
    );
}
